module Prng = Tb_util.Prng
module J = Tb_util.Json
module Schedule = Tb_hir.Schedule
module Config = Tb_cpu.Config

type arrival_kind = Poisson | Burst of int | Ramp

let arrival_kind_to_string = function
  | Poisson -> "poisson"
  | Burst n -> Printf.sprintf "burst:%d" n
  | Ramp -> "ramp"

let arrival_kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "poisson" -> Ok Poisson
  | "ramp" -> Ok Ramp
  | "burst" -> Ok (Burst 8)
  | s when String.length s > 6 && String.sub s 0 6 = "burst:" -> (
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some n when n >= 1 -> Ok (Burst n)
    | _ -> Error (Printf.sprintf "invalid burst size in %S" s))
  | _ ->
    Error
      (Printf.sprintf
         "unknown arrival process %S (expected poisson, burst[:N] or ramp)" s)

type model_spec = {
  name : string;
  forest : Tb_model.Forest.t;
  profiles : Tb_model.Model_stats.tree_profile array option;
  pool : float array array;
  weight : int;
}

type config = {
  arrival : arrival_kind;
  rate_rps : float;
  num_requests : int;
  seed : int;
  schedule : Schedule.t;
  runtime : Runtime.config;
  mode : Runtime.mode;
  cache_policy : Policy.kind;
  cache_capacity : int;
  cache_dir : string option;
  target : Config.t;
}

let default_config =
  {
    arrival = Poisson;
    rate_rps = 50_000.0;
    num_requests = 2000;
    seed = 42;
    schedule = Schedule.default;
    runtime = Runtime.default_config;
    mode = Runtime.Virtual;
    cache_policy = Policy.Lru;
    cache_capacity = 8;
    cache_dir = None;
    target = Config.intel_rocket_lake;
  }

(* Exponential deviate with mean [mean]; 1 -. u avoids log 0. *)
let exp_gap rng ~mean = -.mean *. log (1.0 -. Prng.uniform rng)

let gen_arrivals rng kind ~rate_rps ~n =
  if n < 0 then invalid_arg "Simulate.gen_arrivals: n < 0";
  if not (rate_rps > 0.0) then
    invalid_arg "Simulate.gen_arrivals: rate_rps <= 0";
  let mean_gap_us = 1e6 /. rate_rps in
  match kind with
  | Poisson ->
    let t = ref 0.0 in
    Array.init n (fun _ ->
        let at = !t in
        t := !t +. exp_gap rng ~mean:mean_gap_us;
        at)
  | Burst b ->
    (* Burst starts are Poisson at rate/b so the average rate is kept;
       the b requests of a burst share the start timestamp. *)
    let t = ref 0.0 in
    let remaining = ref 0 in
    Array.init n (fun _ ->
        if !remaining = 0 then begin
          remaining := b;
          t := !t +. exp_gap rng ~mean:(mean_gap_us *. float_of_int b)
        end;
        decr remaining;
        !t)
  | Ramp ->
    (* Intensity grows linearly from 0 to 2×rate over the horizon
       T = n / rate, so the cumulative count is quadratic: inverting it
       puts arrival i at T·√(u_i) for sorted uniforms. Using i/n quantiles
       jittered by the rng keeps the stream deterministic and sorted. *)
    let horizon_us = float_of_int n *. mean_gap_us in
    let us = Array.init n (fun _ -> Prng.uniform rng) in
    Array.sort compare us;
    Array.map (fun u -> horizon_us *. sqrt u) us

type report = {
  config_json : J.t;
  result : Runtime.result;
  per_model : (string * int) list;
}

let config_to_json (c : config) models =
  J.Obj
    [
      ("arrival", J.Str (arrival_kind_to_string c.arrival));
      ("rate_rps", J.Num c.rate_rps);
      ("num_requests", J.Num (float_of_int c.num_requests));
      ("seed", J.Num (float_of_int c.seed));
      ("mode", J.Str (Runtime.mode_to_string c.mode));
      ("schedule", Schedule.to_json c.schedule);
      ("queue_capacity", J.Num (float_of_int c.runtime.Runtime.queue_capacity));
      ("batch_max", J.Num (float_of_int c.runtime.Runtime.batch_max));
      ("deadline_us", J.Num c.runtime.Runtime.deadline_us);
      ("workers", J.Num (float_of_int c.runtime.Runtime.workers));
      ( "dispatch_overhead_us",
        J.Num c.runtime.Runtime.dispatch_overhead_us );
      ("cache_policy", J.Str (Policy.kind_to_string c.cache_policy));
      ("cache_capacity", J.Num (float_of_int c.cache_capacity));
      ( "cache_dir",
        match c.cache_dir with None -> J.Null | Some d -> J.Str d );
      ("target", J.Str c.target.Config.name);
      ( "models",
        J.Obj
          (List.map
             (fun m -> (m.name, J.Num (float_of_int m.weight)))
             models) );
    ]

let run ?calibration (c : config) models =
  if models = [] then invalid_arg "Simulate.run: no models";
  List.iter
    (fun m ->
      if Array.length m.pool = 0 then
        invalid_arg
          (Printf.sprintf "Simulate.run: model %s has an empty row pool"
             m.name);
      if m.weight < 1 then
        invalid_arg
          (Printf.sprintf "Simulate.run: model %s has weight < 1" m.name))
    models;
  let registry =
    Registry.create ~target:c.target ~policy:c.cache_policy
      ~capacity:c.cache_capacity ?cache_dir:c.cache_dir ()
  in
  List.iter
    (fun m ->
      Registry.register registry ~name:m.name ?profiles:m.profiles
        ~sample_rows:m.pool m.forest)
    models;
  Option.iter (Registry.calibrate registry) calibration;
  let rng = Prng.create c.seed in
  let arrivals =
    gen_arrivals rng c.arrival ~rate_rps:c.rate_rps ~n:c.num_requests
  in
  (* Weighted choice by repetition: weights are small integers. *)
  let model_arr =
    Array.concat
      (List.map (fun m -> Array.make m.weight m) models)
  in
  let requests =
    Array.mapi
      (fun i at ->
        let m = Prng.choose rng model_arr in
        let row = Prng.choose rng m.pool in
        { Runtime.id = i; model = m.name; row; arrival_us = at })
      arrivals
  in
  let result =
    Runtime.run ~config:c.runtime ~mode:c.mode ~schedule:c.schedule registry
      requests
  in
  let per_model =
    List.map
      (fun m ->
        let count = ref 0 in
        Array.iter
          (fun (r : Runtime.request) ->
            if r.model = m.name && result.Runtime.outputs.(r.id) <> None then
              incr count)
          requests;
        (m.name, !count))
      models
  in
  { config_json = config_to_json c models; result; per_model }

let report_to_json ?(virtual_only = false) r =
  let res = r.result in
  let m = res.Runtime.metrics in
  let fields =
    [
      ("config", r.config_json);
      ("metrics", Metrics.to_json ~include_wall:(not virtual_only) m);
      ("queue", Rqueue.stats_to_json res.Runtime.queue_stats);
      ("cache", Policy.stats_to_json res.Runtime.cache_stats);
      ("compiles", J.Num (float_of_int res.Runtime.compile_count));
      ("hydrations", J.Num (float_of_int res.Runtime.hydration_count));
      ( "per_model",
        J.Obj
          (List.map
             (fun (name, n) -> (name, J.Num (float_of_int n)))
             r.per_model) );
      ( "equivalence_failures",
        J.Num (float_of_int res.Runtime.equivalence_failures) );
      ( "equivalent",
        J.Bool (res.Runtime.equivalence_failures = 0) );
    ]
    (* Like the metrics' wall set: the drift section exists only when a
       dual run measured one, and the virtual view omits it. *)
    @
    if virtual_only || res.Runtime.drift = [] then []
    else
      [
        ( "drift",
          J.List
            (List.map Tb_analysis.Serve_check.drift_to_json res.Runtime.drift)
        );
      ]
  in
  J.Obj fields
