module Prng = Tb_util.Prng
module J = Tb_util.Json
module Schedule = Tb_hir.Schedule
module Config = Tb_cpu.Config

type arrival_kind = Poisson | Burst of int | Ramp

let arrival_kind_to_string = function
  | Poisson -> "poisson"
  | Burst n -> Printf.sprintf "burst:%d" n
  | Ramp -> "ramp"

let arrival_kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "poisson" -> Ok Poisson
  | "ramp" -> Ok Ramp
  | "burst" -> Ok (Burst 8)
  | s when String.length s > 6 && String.sub s 0 6 = "burst:" -> (
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some n when n >= 1 -> Ok (Burst n)
    | _ -> Error (Printf.sprintf "invalid burst size in %S" s))
  | _ ->
    Error
      (Printf.sprintf
         "unknown arrival process %S (expected poisson, burst[:N] or ramp)" s)

type popularity = Uniform | Zipf of float

let popularity_to_string = function
  | Uniform -> "uniform"
  | Zipf theta -> Printf.sprintf "zipf:%g" theta

let popularity_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "uniform" -> Ok Uniform
  | "zipf" -> Ok (Zipf 1.0)
  | s when String.length s > 5 && String.sub s 0 5 = "zipf:" -> (
    match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some theta when theta > 0.0 && Float.is_finite theta -> Ok (Zipf theta)
    | _ -> Error (Printf.sprintf "invalid zipf exponent in %S" s))
  | _ ->
    Error
      (Printf.sprintf
         "unknown popularity %S (expected uniform or zipf[:theta])" s)

type model_spec = {
  name : string;
  forest : Tb_model.Forest.t;
  profiles : Tb_model.Model_stats.tree_profile array option;
  pool : float array array;
  weight : int;
  slo_us : float option;
}

type config = {
  arrival : arrival_kind;
  rate_rps : float;
  num_requests : int;
  seed : int;
  popularity : popularity;
  schedule : Schedule.t;
  runtime : Runtime.config;
  mode : Runtime.mode;
  shards : int;
  routing : Router.policy;
  cache_policy : Policy.kind;
  cache_capacity : int;
  cache_dir : string option;
  cache_max_bytes : int option;
  target : Config.t;
}

let default_config =
  {
    arrival = Poisson;
    rate_rps = 50_000.0;
    num_requests = 2000;
    seed = 42;
    popularity = Uniform;
    schedule = Schedule.default;
    runtime = Runtime.default_config;
    mode = Runtime.Virtual;
    shards = 1;
    routing = Router.Affinity;
    cache_policy = Policy.Lru;
    cache_capacity = 8;
    cache_dir = None;
    cache_max_bytes = None;
    target = Config.intel_rocket_lake;
  }

(* Exponential deviate with mean [mean]; 1 -. u avoids log 0. *)
let exp_gap rng ~mean = -.mean *. log (1.0 -. Prng.uniform rng)

let gen_arrivals rng kind ~rate_rps ~n =
  if n < 0 then invalid_arg "Simulate.gen_arrivals: n < 0";
  if not (rate_rps > 0.0) then
    invalid_arg "Simulate.gen_arrivals: rate_rps <= 0";
  let mean_gap_us = 1e6 /. rate_rps in
  match kind with
  | Poisson ->
    let t = ref 0.0 in
    Array.init n (fun _ ->
        let at = !t in
        t := !t +. exp_gap rng ~mean:mean_gap_us;
        at)
  | Burst b ->
    (* Burst starts are Poisson at rate/b so the average rate is kept;
       the b requests of a burst share the start timestamp. *)
    let t = ref 0.0 in
    let remaining = ref 0 in
    Array.init n (fun _ ->
        if !remaining = 0 then begin
          remaining := b;
          t := !t +. exp_gap rng ~mean:(mean_gap_us *. float_of_int b)
        end;
        decr remaining;
        !t)
  | Ramp ->
    (* Intensity grows linearly from 0 to 2×rate over the horizon
       T = n / rate, so the cumulative count is quadratic: inverting it
       puts arrival i at T·√(u_i) for sorted uniforms. Using i/n quantiles
       jittered by the rng keeps the stream deterministic and sorted. *)
    let horizon_us = float_of_int n *. mean_gap_us in
    let us = Array.init n (fun _ -> Prng.uniform rng) in
    Array.sort compare us;
    Array.map (fun u -> horizon_us *. sqrt u) us

type report = {
  config_json : J.t;
  result : Runtime.result;
  per_model : (string * int) list;
}

let config_to_json (c : config) models =
  J.Obj
    [
      ("arrival", J.Str (arrival_kind_to_string c.arrival));
      ("rate_rps", J.Num c.rate_rps);
      ("num_requests", J.Num (float_of_int c.num_requests));
      ("seed", J.Num (float_of_int c.seed));
      ("popularity", J.Str (popularity_to_string c.popularity));
      ("mode", J.Str (Runtime.mode_to_string c.mode));
      ("shards", J.Num (float_of_int c.shards));
      ("routing", J.Str (Router.policy_to_string c.routing));
      ( "scheduling",
        J.Str (Scheduler.policy_to_string c.runtime.Runtime.scheduling) );
      ( "precision",
        J.Str
          (Tb_core.Treebeard.precision_to_string c.runtime.Runtime.precision)
      );
      ("schedule", Schedule.to_json c.schedule);
      ("queue_capacity", J.Num (float_of_int c.runtime.Runtime.queue_capacity));
      ("batch_max", J.Num (float_of_int c.runtime.Runtime.batch_max));
      ("deadline_us", J.Num c.runtime.Runtime.deadline_us);
      ("workers", J.Num (float_of_int c.runtime.Runtime.workers));
      ( "dispatch_overhead_us",
        J.Num c.runtime.Runtime.dispatch_overhead_us );
      ("cache_policy", J.Str (Policy.kind_to_string c.cache_policy));
      ("cache_capacity", J.Num (float_of_int c.cache_capacity));
      ( "cache_dir",
        match c.cache_dir with None -> J.Null | Some d -> J.Str d );
      ( "cache_max_bytes",
        match c.cache_max_bytes with
        | None -> J.Null
        | Some b -> J.Num (float_of_int b) );
      ("target", J.Str c.target.Config.name);
      ( "models",
        J.Obj
          (List.map
             (fun m -> (m.name, J.Num (float_of_int m.weight)))
             models) );
      ( "slo_us",
        J.Obj
          (List.filter_map
             (fun m -> Option.map (fun b -> (m.name, J.Num b)) m.slo_us)
             models) );
    ]

let validate_models ~who models =
  if models = [] then invalid_arg (who ^ ": no models");
  List.iter
    (fun m ->
      if Array.length m.pool = 0 then
        invalid_arg
          (Printf.sprintf "%s: model %s has an empty row pool" who m.name);
      if m.weight < 1 then
        invalid_arg (Printf.sprintf "%s: model %s has weight < 1" who m.name);
      match m.slo_us with
      | Some b when not (b > 0.0 && Float.is_finite b) ->
        invalid_arg
          (Printf.sprintf "%s: model %s slo_us not positive" who m.name)
      | Some _ | None -> ())
    models

let make_registry (c : config) models =
  let registry =
    Registry.create ~target:c.target ~policy:c.cache_policy
      ~capacity:c.cache_capacity ?cache_dir:c.cache_dir
      ?cache_max_bytes:c.cache_max_bytes ()
  in
  List.iter
    (fun m ->
      Registry.register registry ~name:m.name ?profiles:m.profiles
        ~sample_rows:m.pool m.forest)
    models;
  registry

(* Per-model SLO budgets declared on the model specs extend (and win
   over) any budgets already in the runtime config. *)
let effective_runtime (c : config) models =
  let spec_slos =
    List.filter_map
      (fun m -> Option.map (fun b -> (m.name, b)) m.slo_us)
      models
  in
  if spec_slos = [] then c.runtime
  else
    { c.runtime with Runtime.slo_us = spec_slos @ c.runtime.Runtime.slo_us }

let gen_requests rng (c : config) models =
  let arrivals =
    gen_arrivals rng c.arrival ~rate_rps:c.rate_rps ~n:c.num_requests
  in
  match c.popularity with
  | Uniform ->
    (* Weighted choice by repetition: weights are small integers. *)
    let model_arr =
      Array.concat (List.map (fun m -> Array.make m.weight m) models)
    in
    Array.mapi
      (fun i at ->
        let m = Prng.choose rng model_arr in
        let row = Prng.choose rng m.pool in
        { Runtime.id = i; model = m.name; row; arrival_us = at })
      arrivals
  | Zipf theta ->
    (* Zipfian popularity over declaration order: the first model is the
       hottest (P(rank k) ∝ 1/(k+1)^θ); spec weights are ignored. *)
    let model_arr = Array.of_list models in
    let zipf = Tb_util.Zipf.create ~n:(Array.length model_arr) ~theta in
    Array.mapi
      (fun i at ->
        let m = model_arr.(Tb_util.Zipf.draw zipf rng) in
        let row = Prng.choose rng m.pool in
        { Runtime.id = i; model = m.name; row; arrival_us = at })
      arrivals

let count_per_model models requests outputs =
  List.map
    (fun m ->
      let count = ref 0 in
      Array.iter
        (fun (r : Runtime.request) ->
          if r.model = m.name && outputs.(r.id) <> None then incr count)
        requests;
      (m.name, !count))
    models

let run ?calibration (c : config) models =
  validate_models ~who:"Simulate.run" models;
  let registry = make_registry c models in
  Option.iter (Registry.calibrate registry) calibration;
  let rng = Prng.create c.seed in
  let requests = gen_requests rng c models in
  let result =
    Runtime.run
      ~config:(effective_runtime c models)
      ~mode:c.mode ~schedule:c.schedule registry requests
  in
  let per_model = count_per_model models requests result.Runtime.outputs in
  { config_json = config_to_json c models; result; per_model }

(* Which precision tier actually served each model — per batch the
   compiled entry knows its resolved tier, so the report can show a
   quantized fleet's per-model fallbacks at a glance. Sorted by model
   name for deterministic output. *)
let tiers_of_batches (batches : Runtime.batch_exec list) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (b : Runtime.batch_exec) ->
      Hashtbl.replace tbl b.Runtime.compiled.Registry.model
        b.Runtime.compiled.Registry.tier)
    batches;
  Hashtbl.fold (fun m tier acc -> (m, tier) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let tiers_json batches =
  J.Obj
    (List.map
       (fun (m, tier) -> (m, J.Str (Tb_core.Treebeard.tier_to_string tier)))
       (tiers_of_batches batches))

let report_to_json ?(virtual_only = false) r =
  let res = r.result in
  let m = res.Runtime.metrics in
  let fields =
    [
      ("config", r.config_json);
      ("metrics", Metrics.to_json ~include_wall:(not virtual_only) m);
      ("queue", Rqueue.stats_to_json res.Runtime.queue_stats);
      ("cache", Policy.stats_to_json res.Runtime.cache_stats);
      ("compiles", J.Num (float_of_int res.Runtime.compile_count));
      ("hydrations", J.Num (float_of_int res.Runtime.hydration_count));
      ( "per_model",
        J.Obj
          (List.map
             (fun (name, n) -> (name, J.Num (float_of_int n)))
             r.per_model) );
      ("precision_tiers", tiers_json res.Runtime.batches);
      ( "equivalence_failures",
        J.Num (float_of_int res.Runtime.equivalence_failures) );
      ( "equivalent",
        J.Bool (res.Runtime.equivalence_failures = 0) );
    ]
    (* Like the metrics' wall set: the drift section exists only when a
       dual run measured one, and the virtual view omits it. *)
    @
    if virtual_only || res.Runtime.drift = [] then []
    else
      [
        ( "drift",
          J.List
            (List.map Tb_analysis.Serve_check.drift_to_json res.Runtime.drift)
        );
      ]
  in
  J.Obj fields

(* ------------------------------------------------------------------ *)
(* Sharded fleet                                                       *)

type fleet_report = {
  fleet_config_json : J.t;
  fleet : Runtime.fleet_result;
  fleet_per_model : (string * int) list;
}

let run_fleet ?calibration (c : config) models =
  validate_models ~who:"Simulate.run_fleet" models;
  if c.shards < 1 then invalid_arg "Simulate.run_fleet: shards < 1";
  let router = Router.create c.routing ~shards:c.shards in
  (* Every shard registers every model: registration is cheap and a
     rebalance can route any model anywhere; compilation stays lazy. All
     shards share the config's cache_dir, which is the artifact-shipping
     channel. *)
  let registries =
    List.map
      (fun sid ->
        let reg = make_registry c models in
        Option.iter (Registry.calibrate reg) calibration;
        (sid, reg))
      (Router.shard_ids router)
  in
  let rng = Prng.create c.seed in
  (* The trace is generated before routing, so it depends only on the
     seed — resharding re-partitions the same requests. *)
  let requests = gen_requests rng c models in
  let fleet =
    Runtime.run_fleet
      ~config:(effective_runtime c models)
      ~mode:c.mode ~schedule:c.schedule ~router registries requests
  in
  let per_model =
    count_per_model models requests fleet.Runtime.fleet_outputs
  in
  {
    fleet_config_json = config_to_json c models;
    fleet;
    fleet_per_model = per_model;
  }

let shard_to_json ~virtual_only (sid, (r : Runtime.result)) =
  let fields =
    [
      ( "metrics",
        Metrics.to_json ~include_wall:(not virtual_only) r.Runtime.metrics );
      ("queue", Rqueue.stats_to_json r.Runtime.queue_stats);
      ("cache", Policy.stats_to_json r.Runtime.cache_stats);
      ("compiles", J.Num (float_of_int r.Runtime.compile_count));
      ("hydrations", J.Num (float_of_int r.Runtime.hydration_count));
      ( "foreign_hydrations",
        J.Num (float_of_int r.Runtime.foreign_hydration_count) );
      ("precision_tiers", tiers_json r.Runtime.batches);
      ( "equivalence_failures",
        J.Num (float_of_int r.Runtime.equivalence_failures) );
    ]
    @
    if virtual_only || r.Runtime.drift = [] then []
    else
      [
        ( "drift",
          J.List
            (List.map Tb_analysis.Serve_check.drift_to_json r.Runtime.drift)
        );
      ]
  in
  (string_of_int sid, J.Obj fields)

let fleet_report_to_json ?(virtual_only = false) fr =
  let f = fr.fleet in
  J.Obj
    [
      ("config", fr.fleet_config_json);
      ("router", Router.to_json f.Runtime.fleet_router);
      ( "metrics",
        Metrics.to_json ~include_wall:(not virtual_only)
          f.Runtime.fleet_metrics );
      ( "shards",
        J.Obj
          (List.map (shard_to_json ~virtual_only) f.Runtime.shard_results) );
      ("compiles", J.Num (float_of_int f.Runtime.fleet_compiles));
      ("hydrations", J.Num (float_of_int f.Runtime.fleet_hydrations));
      ( "foreign_hydrations",
        J.Num (float_of_int f.Runtime.fleet_foreign_hydrations) );
      ( "per_model",
        J.Obj
          (List.map
             (fun (name, n) -> (name, J.Num (float_of_int n)))
             fr.fleet_per_model) );
      ( "equivalence_failures",
        J.Num (float_of_int f.Runtime.fleet_equivalence_failures) );
      ("equivalent", J.Bool (f.Runtime.fleet_equivalence_failures = 0));
    ]
