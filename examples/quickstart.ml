(* Quickstart: train a gradient-boosted model on a synthetic dataset,
   compile it with TREEBEARD, and run batch inference.

   Run with: dune exec examples/quickstart.exe *)

module Dataset = Tb_data.Dataset
module Train = Tb_gbt.Train
module Treebeard = Tb_core.Treebeard

let () =
  (* 1. Get a dataset (the higgs benchmark generator, 2000 rows). *)
  let rng = Tb_util.Prng.create 42 in
  let ds = Tb_data.Generators.higgs ~rows:2000 rng in
  let train, test = Dataset.split ds ~train_fraction:0.8 rng in

  (* 2. Train an ensemble (100 trees, depth 6). *)
  let params = { Train.default_params with num_rounds = 100; max_depth = 6 } in
  let forest = Train.fit ~params train in
  Printf.printf "trained %d trees, max depth %d, accuracy %.3f\n"
    (Array.length forest.Tb_model.Forest.trees)
    (Tb_model.Forest.max_depth forest)
    (Train.accuracy forest test);

  (* 3. Compile with the default schedule (tile size 8, tree-at-a-time,
     padding + unrolling, interleave 4, sparse layout). *)
  let compiled = Treebeard.make (`Forest forest) in
  Printf.printf "compiled with schedule: %s\n"
    (Tb_hir.Schedule.to_string compiled.Treebeard.schedule);

  (* 4. Batch inference: predictForest over the test rows. *)
  let t0 = Unix.gettimeofday () in
  let predictions = Treebeard.predict_forest compiled test.Dataset.features in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "predicted %d rows in %.2f ms (%.2f us/row)\n"
    (Array.length predictions) (dt *. 1e3)
    (dt *. 1e6 /. float_of_int (Array.length predictions));

  (* 5. The compiled predictions match the reference traversal exactly. *)
  let reference = Tb_model.Forest.predict_batch_raw forest test.Dataset.features in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i out ->
      Array.iteri
        (fun c v -> max_err := Float.max !max_err (Float.abs (v -. reference.(i).(c))))
        out)
    predictions;
  Printf.printf "max |compiled - reference| = %g\n" !max_err
