(* Probability-based tiling on a leaf-biased workload (paper §III-C).

   Production categorical traffic is head-heavy: most requests repeat a few
   common feature patterns. Trees trained on such data are "leaf-biased" —
   a handful of leaves receive nearly all the probability mass — and
   Algorithm 1 tiles them so the hot leaves sit behind fewer tile steps.

   Run with: dune exec examples/leaf_bias_tuning.exe *)

module Dataset = Tb_data.Dataset
module Model_stats = Tb_model.Model_stats
module Schedule = Tb_hir.Schedule
module Treebeard = Tb_core.Treebeard
module Perf = Tb_core.Perf
module Config = Tb_cpu.Config

let () =
  (* airline-ohe is the paper's most leaf-biased benchmark. *)
  let rng = Tb_util.Prng.create 7 in
  let ds = Tb_data.Generators.airline_ohe ~rows:3000 rng in
  let train, test = Dataset.split ds ~train_fraction:0.8 rng in
  let params =
    { Tb_gbt.Train.default_params with
      num_rounds = 200; max_depth = 9; learning_rate = 0.02;
      subsample = 0.5; colsample = 0.12; min_child_weight = 0.1 }
  in
  let forest = Tb_gbt.Train.fit ~params train in

  (* Leaf probabilities are estimated on the training data (paper fn. 5). *)
  let profiles = Model_stats.profile_forest forest train.Dataset.features in
  let biased =
    Array.fold_left
      (fun acc p -> if Model_stats.is_leaf_biased p ~alpha:0.075 ~beta:0.9 then acc + 1 else acc)
      0 profiles
  in
  Printf.printf "%d of %d trees are leaf-biased at <alpha=0.075, beta=0.9>\n"
    biased (Array.length profiles);

  (* Tile size 2 leaves several tile levels per tree, which is where the
     two algorithms' tilings diverge most visibly. *)
  let schedule tiling =
    { Schedule.default with
      tiling; tile_size = 2; interleave = 1; pad_and_unroll = false; peel = false }
  in
  let basic =
    Treebeard.make ~plan:(`Schedule (schedule Schedule.Basic)) ~profiles
      (`Forest forest)
  in
  let prob =
    Treebeard.make
      ~plan:(`Schedule (schedule Schedule.Probability_based))
      ~profiles (`Forest forest)
  in

  (* Compare the expected number of tile steps per walk — the §III-C
     objective probability tiling minimizes. *)
  let rows = test.Dataset.features in
  let mean_steps compiled =
    let lowered = compiled.Treebeard.lowered in
    let total = ref 0 in
    let walks = ref 0 in
    Array.iteri
      (fun tree _ ->
        Array.iter
          (fun row ->
            let steps = ref 0 in
            ignore
              (Tb_lir.Layout.walk_with_trace lowered.Tb_lir.Lower.layout ~tree row
                 ~on_slot:(fun _ -> incr steps));
            total := !total + !steps;
            incr walks)
          (Array.sub rows 0 64))
      lowered.Tb_lir.Lower.tree_class;
    float_of_int !total /. float_of_int !walks
  in
  Printf.printf "mean tile steps per walk: basic %.2f, probability-based %.2f\n"
    (mean_steps basic) (mean_steps prob);

  (* And the simulated end-to-end effect on the Intel target. *)
  let simulate compiled =
    (Perf.simulate ~target:Config.intel_rocket_lake compiled.Treebeard.lowered rows)
      .Perf.cycles_per_row
  in
  let c_basic = simulate basic and c_prob = simulate prob in
  Printf.printf "simulated cycles/row: basic %.0f, probability-based %.0f (%.2fx)\n"
    c_basic c_prob (c_basic /. c_prob);

  (* Both compilations compute the same predictions (tree reordering
     changes the floating-point summation order, hence the tolerance). *)
  let r = Tb_model.Forest.predict_batch_raw forest rows in
  let check compiled =
    let out = Treebeard.predict_forest compiled rows in
    Array.for_all2
      (fun a b -> Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b)
      out r
  in
  Printf.printf "correct: basic %b, probability-based %b\n" (check basic) (check prob)
