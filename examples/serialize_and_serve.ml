(* Model serialization round-trip: train once, serialize, then load and
   compile in a "serving" phase — TREEBEARD's input is a serialized
   ensemble (paper Fig. 1).

   Run with: dune exec examples/serialize_and_serve.exe *)

module Dataset = Tb_data.Dataset
module Forest = Tb_model.Forest
module Serialize = Tb_model.Serialize
module Treebeard = Tb_core.Treebeard

let () =
  let path = Filename.temp_file "treebeard_model" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (* --- training side --- *)
  let rng = Tb_util.Prng.create 5 in
  let ds = Tb_data.Generators.abalone ~rows:2000 rng in
  let params = { Tb_gbt.Train.default_params with num_rounds = 150; max_depth = 6 } in
  let forest = Tb_gbt.Train.fit ~params ds in
  Serialize.to_file path forest;
  Printf.printf "serialized %d trees to %s (%d KB)\n"
    (Array.length forest.Forest.trees) path
    ((Unix.stat path).Unix.st_size / 1024);

  (* --- serving side: load, compile, predict --- *)
  let compiled = Treebeard.make (`File path) in
  let batch = Dataset.subsample_rows ds 512 rng in
  let out = Treebeard.predict_forest compiled batch in
  Printf.printf "served a %d-row batch; first predictions: %.3f %.3f %.3f\n"
    (Array.length out) out.(0).(0) out.(1).(0) out.(2).(0);

  (* The loaded model predicts exactly like the in-memory original. *)
  let reference = Forest.predict_batch_raw forest batch in
  let exact =
    Array.for_all2 (fun a b -> Array.for_all2 Float.equal a b) out reference
  in
  Printf.printf "round-trip exactness: %b\n" exact;

  (* Inspect the compiled program's IR. *)
  print_newline ();
  print_string (Treebeard.dump_ir compiled)
