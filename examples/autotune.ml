(* Schedule autotuning: the same model gets different optimal schedules on
   different CPU targets (paper §VI-A).

   Run with: dune exec examples/autotune.exe *)

module Schedule = Tb_hir.Schedule
module Config = Tb_cpu.Config
module Explore = Tb_core.Explore
module Perf = Tb_core.Perf

let () =
  let rng = Tb_util.Prng.create 3 in
  let ds = Tb_data.Generators.covtype ~rows:3000 rng in
  let train, test = Tb_data.Dataset.split ds ~train_fraction:0.8 rng in
  let params =
    { Tb_gbt.Train.default_params with
      num_rounds = 300; max_depth = 9; learning_rate = 0.02;
      subsample = 0.7; colsample = 0.25; min_child_weight = 0.1 }
  in
  let forest = Tb_gbt.Train.fit ~params train in
  let profiles =
    Tb_model.Model_stats.profile_forest forest train.Tb_data.Dataset.features
  in
  let rows = test.Tb_data.Dataset.features in
  Printf.printf "model: %d trees, depth %d\n\n"
    (Array.length forest.Tb_model.Forest.trees)
    (Tb_model.Forest.max_depth forest);
  List.iter
    (fun target ->
      let baseline =
        Explore.evaluate ~target forest Schedule.scalar_baseline rows
      in
      let t0 = Unix.gettimeofday () in
      let best = Explore.greedy ~target ~profiles forest rows in
      Printf.printf "%s:\n" target.Config.name;
      Printf.printf "  scalar baseline : %8.0f cycles/row\n" baseline.Perf.cycles_per_row;
      Printf.printf "  best schedule   : %s\n" (Schedule.to_string best.Explore.schedule);
      Printf.printf "  best cost       : %8.0f cycles/row (%.2fx speedup)\n"
        best.Explore.perf.Perf.cycles_per_row
        (baseline.Perf.cycles_per_row /. best.Explore.perf.Perf.cycles_per_row);
      Printf.printf "  search          : %d schedules in %.1fs\n\n"
        best.Explore.evaluated (Unix.gettimeofday () -. t0))
    Config.targets;
  (* The exhaustive Table II grid is also available when search time does
     not matter: *)
  Printf.printf "(exhaustive grid has %d schedules; try Explore.exhaustive)\n"
    (List.length Schedule.table2_grid)
