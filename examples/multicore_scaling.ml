(* Real multicore batch inference over OCaml domains (paper §IV-C).

   TREEBEARD parallelizes the row loop by tiling it across threads; here we
   measure actual wall-clock scaling of the compiled predictor.

   Run with: dune exec examples/multicore_scaling.exe *)

module Schedule = Tb_hir.Schedule
module Treebeard = Tb_core.Treebeard

let () =
  let rng = Tb_util.Prng.create 11 in
  let ds = Tb_data.Generators.letter ~rows:2000 rng in
  let params =
    { Tb_gbt.Train.default_params with num_rounds = 30; max_depth = 7 }
  in
  let forest = Tb_gbt.Train.fit ~params ds in
  let rows = Tb_data.Dataset.subsample_rows ds 8192 rng in
  Printf.printf "model: %d trees (26-class letter), batch %d\n\n"
    (Array.length forest.Tb_model.Forest.trees)
    (Array.length rows);
  let time_with threads =
    let compiled =
      Treebeard.make
        ~plan:(`Schedule (Schedule.with_threads Schedule.default threads))
        (`Forest forest)
    in
    let r =
      Tb_util.Timer.measure ~warmup:1 ~min_iters:3 ~min_time_s:0.5 (fun () ->
          ignore (Treebeard.predict_forest compiled rows))
    in
    r.Tb_util.Timer.mean_s
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host reports %d usable core(s)%s\n\n" cores
    (if cores = 1 then
       " - domains will serialize; expect ~1x measured speedup"
     else "");
  let t1 = time_with 1 in
  let predicted threads =
    Tb_cpu.Multicore.speedup Tb_cpu.Config.intel_rocket_lake ~threads ()
    *. Tb_core.Perf.naive_parallel_efficiency
  in
  Printf.printf "%8s %12s %18s %20s\n" "domains" "ms/batch" "measured speedup"
    "model (8-core CPU)";
  List.iter
    (fun threads ->
      let t = if threads = 1 then t1 else time_with threads in
      Printf.printf "%8d %12.1f %17.2fx %19.2fx\n" threads (t *. 1e3) (t1 /. t)
        (if threads = 1 then 1.0 else predicted threads))
    [ 1; 2; 4; 8 ]
