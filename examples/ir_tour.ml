(* A tour of the compilation pipeline: watch one small model descend
   through every IR level (paper Fig. 2).

   Run with: dune exec examples/ir_tour.exe *)

module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  (* A tiny 3-tree model, like the paper's running example. *)
  let node f t l r = Tree.Node { feature = f; threshold = t; left = l; right = r } in
  let leaf v = Tree.Leaf v in
  let tree1 = node 0 0.5 (leaf 0.1) (node 1 0.3 (leaf 0.2) (leaf 0.3)) in
  let tree2 =
    node 2 0.1 (node 0 0.9 (leaf 0.4) (leaf 0.5)) (node 1 0.7 (leaf 0.6) (node 2 0.8 (leaf 0.7) (leaf 0.8)))
  in
  let tree3 = node 1 0.4 (leaf 0.9) (node 2 0.6 (leaf 1.0) (leaf 1.1)) in
  let forest = Forest.make ~task:Forest.Regression ~num_features:3 [| tree1; tree2; tree3 |] in

  section "input model (3 binary trees)";
  Array.iteri
    (fun i t -> Format.printf "Tree%d:@.%a@." (i + 1) Tree.pp t)
    forest.Forest.trees;

  (* HIR: tile with size 2, pad, reorder. *)
  let schedule =
    { Schedule.default with tile_size = 2; interleave = 2; layout = Schedule.Sparse_layout }
  in
  let hir = Tb_hir.Program.build forest schedule in
  section "HIR: tiled, padded, reordered trees";
  Array.iteri
    (fun pos (entry : Tb_hir.Program.tree_entry) ->
      let t = entry.Tb_hir.Program.tiled in
      Printf.printf
        "position %d (source tree %d): %d tiles, walk depth %d, uniform=%b\n" pos
        (entry.Tb_hir.Program.original_index + 1)
        (Tb_hir.Tiled_tree.num_tiles t)
        (Tb_hir.Tiled_tree.depth t)
        (Tb_hir.Tiled_tree.is_uniform_depth t))
    hir.Tb_hir.Program.trees;
  Printf.printf "code-sharing groups: %d (trees of equal depth share a walk body)\n"
    (List.length hir.Tb_hir.Program.groups);
  Printf.printf "LUT: %d interned tile shapes x %d entries\n"
    (Tb_hir.Lut.num_shapes hir.Tb_hir.Program.lut)
    (1 lsl schedule.Schedule.tile_size);

  (* MIR + LIR + register IR via the lowering driver. *)
  let lowered = Tb_lir.Lower.lower_hir hir in
  section "MIR loop nest, LIR walk and register IR";
  print_string (Tb_lir.Lower.dump lowered);

  (* Execute on both backends. *)
  section "execution (closure JIT vs register-IR interpreter vs reference)";
  let rows = [| [| 0.2; 0.5; 0.05 |]; [| 0.7; 0.2; 0.9 |]; [| 0.4; 0.4; 0.4 |] |] in
  let jit = Tb_vm.Jit.compile lowered rows in
  let interp = Tb_vm.Interp.compile lowered rows in
  let reference = Forest.predict_batch_raw forest rows in
  Array.iteri
    (fun i row ->
      Printf.printf "row %d %-20s jit=%.3f interp=%.3f reference=%.3f\n" i
        (Printf.sprintf "[%.1f;%.1f;%.2f]" row.(0) row.(1) row.(2))
        jit.(i).(0) interp.(i).(0) reference.(i).(0))
    rows
