(* Regenerates the golden prediction fixtures in test/golden/.

   Run from the repository root after an INTENDED numeric change:

     dune exec test/gen_golden.exe

   Each fixture pins the default-schedule predictions of one cached zoo
   model (_models/<name>.json) on a deterministic set of rows. The rows
   are derived from the stored seed with our own Prng (stable across
   platforms and OCaml versions), so the fixture only carries the
   predictions — a few KB even for the 2000-feature models. Floats are
   printed with %.17g, so the round trip is exact. *)

module Json = Tb_util.Json
module Forest = Tb_model.Forest
module Prng = Tb_util.Prng
module Schedule = Tb_hir.Schedule

let names =
  [ "abalone"; "airline"; "airline-ohe"; "covtype"; "epsilon"; "letter";
    "higgs"; "year" ]

let num_rows = 8

let golden_rows forest seed =
  let rng = Prng.create seed in
  Array.init num_rows (fun _ ->
      Array.init forest.Forest.num_features (fun _ -> Prng.gaussian rng))

let () =
  if not (Sys.file_exists "test/golden") then Sys.mkdir "test/golden" 0o755;
  List.iter
    (fun name ->
      let forest = Tb_model.Serialize.of_file ("_models/" ^ name ^ ".json") in
      let seed = Hashtbl.hash name in
      let rows = golden_rows forest seed in
      let predict = Tb_vm.Jit.compile (Tb_lir.Lower.lower forest Schedule.default) in
      let predictions = predict rows in
      let floats a = Json.List (Array.to_list (Array.map (fun x -> Json.Num x) a)) in
      let json =
        Json.Obj
          [
            ("model", Json.Str name);
            ("schedule", Json.Str "default");
            ("seed", Json.Num (float_of_int seed));
            ("num_rows", Json.Num (float_of_int num_rows));
            ( "predictions",
              Json.List (Array.to_list (Array.map floats predictions)) );
          ]
      in
      let path = "test/golden/" ^ name ^ ".json" in
      let oc = open_out path in
      output_string oc (Json.to_string ~indent:true json);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s (%d rows x %d outputs)\n" path num_rows
        (Array.length predictions.(0)))
    names;
  (* One golden *artifact* fixture pins the Pack wire format itself: the
     byte-stability test re-encodes it and compares bit for bit, so any
     unintended format change (or a forgotten format_version bump) fails
     loudly. us_per_row stays at its 0 default — fixture bytes must not
     depend on the perf simulator. *)
  let forest = Tb_model.Serialize.of_file "_models/abalone.json" in
  let pack =
    Tb_lir.Pack.of_lower ~model:"abalone"
      (Tb_lir.Lower.lower forest Schedule.default)
  in
  let bytes = Tb_lir.Pack.encode pack in
  let path = "test/golden/abalone.tbpack" in
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  Printf.printf "wrote %s (%d bytes, format v%d)\n" path (Bytes.length bytes)
    Tb_lir.Pack.format_version;
  (* And one golden *quantized* artifact: same model, int16 tier, fixed
     resident depth and tolerance so the quant metadata block and the
     narrow-layout serialization are pinned too. The plan comes from the
     deterministic certifier, so the fixture is reproducible from the
     model cache alone. *)
  let cert = Tb_analysis.Numeric.certify ~width:Tb_analysis.Numeric.I16 forest in
  let qspec = Tb_core.Treebeard.qspec_of_plan cert.Tb_analysis.Numeric.plan in
  let qpack =
    Tb_lir.Pack.of_lower ~model:"abalone"
      ~quant:
        {
          Tb_lir.Pack.resident_k = 2;
          dev_bound = Array.copy cert.Tb_analysis.Numeric.dev_bound;
          tolerance = 0.5;
        }
      (Tb_lir.Lower.lower ~quant:qspec forest Schedule.default)
  in
  let qbytes = Tb_lir.Pack.encode qpack in
  let qpath = "test/golden/abalone-int16.tbpack" in
  let oc = open_out_bin qpath in
  output_bytes oc qbytes;
  close_out oc;
  Printf.printf "wrote %s (%d bytes, format v%d)\n" qpath (Bytes.length qbytes)
    Tb_lir.Pack.format_version
