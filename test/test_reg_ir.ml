(* Register-level IR: verifier, printer, codegen and the interpreter
   backend's agreement with the closure JIT. *)

open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Reg_ir = Tb_lir.Reg_ir
module Reg_codegen = Tb_lir.Reg_codegen
module Mir = Tb_mir.Mir
module Jit = Tb_vm.Jit
module Interp = Tb_vm.Interp

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- verifier --- *)

let dummy_program body =
  {
    Reg_ir.tile_size = 4;
    layout = Layout.Sparse_kind;
    body;
    num_iregs = 10;
    num_fregs = 1;
    num_vregs = 4;
    lanes = 1;
  }

let has_code c ds = List.exists (fun d -> d.Tb_diag.Diagnostic.code = c) ds

let test_verifier_accepts_codegen_output () =
  let rng = Prng.create 1 in
  let forest = Forest.random ~num_trees:8 ~max_depth:7 ~num_features:5 rng in
  List.iter
    (fun schedule ->
      let lp = Lower.lower forest schedule in
      List.iter
        (fun (_, p) ->
          match Reg_ir.check p with
          | [] -> ()
          | ds ->
            Alcotest.failf "codegen produced invalid IR: %s"
              (String.concat "; "
                 (List.map Tb_diag.Diagnostic.to_string ds)))
        (Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir))
    [
      Schedule.scalar_baseline;
      Schedule.default;
      { Schedule.default with layout = Schedule.Array_layout };
      { Schedule.default with pad_and_unroll = false; peel = true };
    ]

let test_verifier_rejects_out_of_range () =
  let p = dummy_program [ Reg_ir.Iset (99, Reg_ir.Iconst 0) ] in
  check_bool "L001 reported" true (has_code "L001" (Reg_ir.check p))

let test_verifier_rejects_use_before_def () =
  let p = dummy_program [ Reg_ir.Iset (2, Reg_ir.Imov 5) ] in
  check_bool "L002 reported" true (has_code "L002" (Reg_ir.check p))

let test_verifier_rejects_lane_type_mismatch () =
  (* Gather expects an int-vector index; feed it a float vector. *)
  let p =
    dummy_program
      [
        Reg_ir.Iset (2, Reg_ir.Iconst 0);
        Reg_ir.Vset (0, Reg_ir.Vload_f (Reg_ir.Thresholds, 2));
        Reg_ir.Vset (1, Reg_ir.Gather (Reg_ir.Row, 0));
      ]
  in
  check_bool "L003 reported" true (has_code "L003" (Reg_ir.check p))

let test_verifier_if_join_is_intersection () =
  (* A register defined on only one branch may not be used after the If. *)
  let p =
    dummy_program
      [
        Reg_ir.Iset (2, Reg_ir.Iconst 1);
        Reg_ir.If (Reg_ir.Ige (2, 0), [ Reg_ir.Iset (3, Reg_ir.Iconst 7) ], []);
        Reg_ir.Iset (4, Reg_ir.Imov 3);
      ]
  in
  check_bool "L002 reported" true (has_code "L002" (Reg_ir.check p))

let test_verifier_accepts_both_branch_def () =
  let p =
    dummy_program
      [
        Reg_ir.Iset (2, Reg_ir.Iconst 1);
        Reg_ir.If
          ( Reg_ir.Ige (2, 0),
            [ Reg_ir.Iset (3, Reg_ir.Iconst 7) ],
            [ Reg_ir.Iset (3, Reg_ir.Iconst 8) ] );
        Reg_ir.Iset (4, Reg_ir.Imov 3);
      ]
  in
  check_bool "accepted" true (Reg_ir.check p = [])

(* --- unroll-and-jam --- *)

let test_jam_lanes_structure_and_projection () =
  let rng = Prng.create 11 in
  let forest = Forest.random ~num_trees:8 ~max_depth:6 ~num_features:5 rng in
  let lp =
    Lower.lower forest { Schedule.default with interleave = 4 }
  in
  let singles = Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir in
  List.iter
    (fun (_, p) ->
      (* Identity at one lane. *)
      check_bool "lanes=1 is identity" true (Reg_codegen.jam_lanes p ~lanes:1 == p);
      let j = Reg_codegen.jam_lanes p ~lanes:4 in
      check_int "lanes recorded" 4 j.Reg_ir.lanes;
      check_int "ireg file widened" (4 * p.Reg_ir.num_iregs) j.Reg_ir.num_iregs;
      check_bool "jammed program verifies" true (Reg_ir.check j = []);
      check_bool "lane partition proved" true ((Tb_analysis.Alias.check j).diags = []);
      (* Every lane's projection is the single-lane program's body. *)
      for lane = 0 to 3 do
        let proj = Tb_analysis.Alias.project j ~lane in
        check_bool
          (Printf.sprintf "lane %d projects back" lane)
          true
          (proj.Reg_ir.body = p.Reg_ir.body)
      done;
      (* Re-jamming an already-jammed program is rejected. *)
      check_bool "double jam rejected" true
        (match Reg_codegen.jam_lanes j ~lanes:2 with
        | exception Invalid_argument _ -> true
        | _ -> false))
    singles

(* --- printer / op counting --- *)

let test_pp_contains_vector_mnemonics () =
  let rng = Prng.create 2 in
  let forest = Forest.random ~num_trees:4 ~max_depth:6 ~num_features:5 rng in
  let lp = Lower.lower forest Schedule.default in
  let s = Interp.dump_programs lp in
  List.iter
    (fun sub -> check_bool sub true (contains s sub))
    [ "vload.f32"; "gather.row"; "vcmp.lt"; "movemask"; "load.LUT"; "walk(sparse" ]

let test_count_ops_expands_repeats () =
  let lay_kind_program depth =
    let rng = Prng.create 3 in
    let forest = Forest.random ~num_trees:4 ~max_depth:6 ~num_features:5 rng in
    let lp = Lower.lower forest Schedule.default in
    ignore depth;
    List.hd (Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir) |> snd
  in
  let p = lay_kind_program 3 in
  check_bool "dynamic >= static" true
    (Reg_ir.count_ops p ~static:false >= Reg_ir.count_ops p ~static:true)

(* --- interpreter equivalence --- *)

let interp_equivalence_property seed =
  let rng = Prng.create seed in
  let forest =
    Forest.random ~num_trees:(2 + Prng.int rng 10) ~max_depth:7 ~num_features:6 rng
  in
  let schedule =
    {
      Schedule.scalar_baseline with
      tile_size = 1 + Prng.int rng 8;
      loop_order =
        (if Prng.bool rng then Schedule.One_tree_at_a_time
         else Schedule.One_row_at_a_time);
      pad_and_unroll = Prng.bool rng;
      peel = Prng.bool rng;
      interleave = 1 lsl Prng.int rng 3;
      layout = (if Prng.bool rng then Schedule.Sparse_layout else Schedule.Array_layout);
    }
  in
  let lp = Lower.lower forest schedule in
  let rows = random_rows rng 6 24 in
  let jit = Jit.compile lp rows in
  let interp = Interp.compile lp rows in
  (Array.for_all2
     (fun a b -> Array.for_all2 Float.equal a b)
     jit interp)
  || QCheck2.Test.fail_reportf "interpreter diverges from JIT: %s"
       (Schedule.to_string schedule)

let test_interp_matches_reference_on_multiclass () =
  let rng = Prng.create 4 in
  let trees =
    Array.init 9 (fun _ -> Tb_model.Tree.random ~max_depth:5 ~num_features:4 rng)
  in
  let forest = Forest.make ~task:(Forest.Multiclass 3) ~num_features:4 trees in
  let rows = random_rows rng 4 20 in
  let lp = Lower.lower forest Schedule.default in
  let out = Interp.compile lp rows in
  check_bool "multiclass" true
    (Array.for_all2 arrays_close out (Forest.predict_batch_raw forest rows))

let test_run_walk_single () =
  let rng = Prng.create 5 in
  let forest = Forest.random ~num_trees:3 ~max_depth:6 ~num_features:5 rng in
  let lp = Lower.lower forest Schedule.default in
  let variants = Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir in
  let row = random_row rng 5 in
  (* Walk tree 0 through the program of its group. *)
  let plans = lp.Lower.mir.Tb_mir.Mir.group_plans in
  Array.iteri
    (fun gi (plan : Tb_mir.Mir.group_plan) ->
      Array.iter
        (fun tree ->
          let p = List.assoc gi variants in
          let got = Interp.run_walk p lp ~tree ~row in
          let want = Layout.walk lp.Lower.layout ~tree row in
          check_float (Printf.sprintf "tree %d" tree) want got)
        plan.Tb_mir.Mir.group.Tb_hir.Reorder.positions)
    plans

let test_constant_tree_program () =
  let forest =
    Forest.make ~task:Forest.Regression ~num_features:1 [| Tb_model.Tree.Leaf 6.5 |]
  in
  let lp = Lower.lower forest Schedule.default in
  let out = Interp.compile lp [| [| 0.0 |] |] in
  check_float "constant" 6.5 out.(0).(0)

let suite =
  [
    quick "verifier accepts codegen output" test_verifier_accepts_codegen_output;
    quick "verifier rejects out-of-range reg" test_verifier_rejects_out_of_range;
    quick "verifier rejects use-before-def" test_verifier_rejects_use_before_def;
    quick "verifier rejects lane mismatch" test_verifier_rejects_lane_type_mismatch;
    quick "verifier If join is intersection" test_verifier_if_join_is_intersection;
    quick "verifier accepts both-branch def" test_verifier_accepts_both_branch_def;
    quick "jam_lanes structure and projection" test_jam_lanes_structure_and_projection;
    quick "printer shows vector mnemonics" test_pp_contains_vector_mnemonics;
    quick "count_ops expands repeats" test_count_ops_expands_repeats;
    qcheck ~count:150 ~name:"interpreter == JIT (bitwise)" seed_gen
      interp_equivalence_property;
    quick "interpreter multiclass == reference" test_interp_matches_reference_on_multiclass;
    quick "run_walk single pair" test_run_walk_single;
    quick "constant tree program" test_constant_tree_program;
  ]
