open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Tree = Tb_model.Tree
module Quickscorer = Tb_baselines.Quickscorer

let qs_equivalence_property seed =
  let rng = Prng.create seed in
  let forest =
    Forest.random ~num_trees:(2 + Prng.int rng 10) ~max_depth:7 ~num_features:6 rng
  in
  let rows = random_rows rng 6 32 in
  let out = Quickscorer.predict_batch (Quickscorer.compile forest) rows in
  let expected = Forest.predict_batch_raw forest rows in
  Array.for_all2 arrays_close out expected
  || QCheck2.Test.fail_report "quickscorer diverges"

let test_qs_wide_trees () =
  (* > 63 leaves forces multi-word bitvectors. *)
  let rec complete d f =
    if d = 0 then Tree.Leaf (Tb_util.Prng.uniform (Prng.create f))
    else
      Tree.Node
        {
          feature = f mod 5;
          threshold = float_of_int (f mod 7) /. 7.0;
          left = complete (d - 1) ((2 * f) + 1);
          right = complete (d - 1) ((2 * f) + 2);
        }
  in
  let forest = Forest.make ~task:Forest.Regression ~num_features:5 [| complete 7 0 |] in
  check_int "128 leaves" 128 (Tree.num_leaves forest.Forest.trees.(0));
  let rng = Prng.create 2 in
  let rows = random_rows rng 5 64 in
  let out = Quickscorer.predict_batch (Quickscorer.compile forest) rows in
  let expected = Forest.predict_batch_raw forest rows in
  check_bool "multi-word masks" true (Array.for_all2 arrays_close out expected)

let test_qs_multiclass () =
  let rng = Prng.create 3 in
  let trees = Array.init 6 (fun _ -> Tree.random ~max_depth:5 ~num_features:4 rng) in
  let forest = Forest.make ~task:(Forest.Multiclass 3) ~num_features:4 trees in
  let rows = random_rows rng 4 16 in
  let out = Quickscorer.predict_batch (Quickscorer.compile forest) rows in
  check_bool "multiclass" true
    (Array.for_all2 arrays_close out (Forest.predict_batch_raw forest rows))

let test_qs_false_node_count_bounds () =
  let rng = Prng.create 4 in
  let forest = Forest.random ~num_trees:10 ~max_depth:6 ~num_features:5 rng in
  let qs = Quickscorer.compile forest in
  let rows = random_rows rng 5 32 in
  let fn = Quickscorer.false_nodes_per_row qs rows in
  check_bool "positive" true (fn > 0.0);
  check_bool "bounded by total nodes" true
    (fn <= float_of_int (Forest.total_nodes forest))

let test_qs_work_scales_with_model () =
  let rng = Prng.create 5 in
  let small = Forest.random ~num_trees:4 ~max_depth:5 ~num_features:5 rng in
  let large = Forest.random ~num_trees:60 ~max_depth:7 ~num_features:5 rng in
  let rows = random_rows rng 5 16 in
  let cost f =
    Quickscorer.cycles_per_row ~target:Tb_cpu.Config.intel_rocket_lake
      (Quickscorer.compile f) rows
  in
  check_bool "poor scaling with model size" true (cost large > 5.0 *. cost small)

let test_qs_extreme_rows () =
  (* All-false and all-true predicate extremes. *)
  let rng = Prng.create 6 in
  let forest = Forest.random ~num_trees:6 ~max_depth:5 ~num_features:4 rng in
  let qs = Quickscorer.compile forest in
  let rows = [| Array.make 4 (-1e18); Array.make 4 1e18 |] in
  let out = Quickscorer.predict_batch qs rows in
  check_bool "extremes" true
    (Array.for_all2 arrays_close out (Forest.predict_batch_raw forest rows))

let suite =
  [
    qcheck ~name:"quickscorer == reference" seed_gen qs_equivalence_property;
    quick "wide trees need multi-word masks" test_qs_wide_trees;
    quick "multiclass" test_qs_multiclass;
    quick "false-node count bounds" test_qs_false_node_count_bounds;
    quick "work scales with model size" test_qs_work_scales_with_model;
    quick "extreme feature values" test_qs_extreme_rows;
  ]
