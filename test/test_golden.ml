(* Golden prediction fixtures: every zoo model's default-schedule output on
   a pinned set of rows, checked in under test/golden/. A lowering-pipeline
   refactor that silently changes numerics fails here before it reaches the
   accuracy experiments.

   A fixture stores a row seed (rows regenerate deterministically from our
   own Prng) and the expected margins, printed with %.17g so the round trip
   is exact; regenerate after an *intended* change with
   [dune exec test/gen_golden.exe] from the repo root. The models
   themselves live in the _models/ cache, which dune cannot copy into the
   test sandbox (underscore dirs are invisible to it), so we reach for the
   repo root by walking up from the cwd and skip any model whose cache
   file is absent. *)

open Helpers
module Json = Tb_util.Json
module Forest = Tb_model.Forest
module Prng = Tb_util.Prng
module Schedule = Tb_hir.Schedule

let names =
  [ "abalone"; "airline"; "airline-ohe"; "covtype"; "epsilon"; "letter";
    "higgs"; "year" ]

(* Tests run from _build/default/test; a dev shell may run the binary from
   the repo root. Probe upward for the model cache. *)
let models_dir =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [ "_models"; "../_models"; "../../_models"; "../../../_models" ]

(* Fixtures sit next to the binary under dune runtest (cwd
   _build/default/test), or under test/ when run from the repo root. *)
let golden_dir =
  if Sys.file_exists "golden" then "golden" else "test/golden"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden name () =
  let fixture =
    Json.of_string (read_file (Filename.concat golden_dir (name ^ ".json")))
  in
  let seed = Json.to_int (Json.member "seed" fixture) in
  let num_rows = Json.to_int (Json.member "num_rows" fixture) in
  let want =
    Json.to_list (Json.member "predictions" fixture)
    |> List.map (fun row ->
           Json.to_list row |> List.map Json.to_float |> Array.of_list)
    |> Array.of_list
  in
  match models_dir with
  | None -> Printf.printf "skipped: no _models cache found from %s\n" (Sys.getcwd ())
  | Some dir ->
    let path = Filename.concat dir (name ^ ".json") in
    if not (Sys.file_exists path) then
      Printf.printf "skipped: %s not cached\n" path
    else begin
      let forest = Tb_model.Serialize.of_file path in
      let rng = Prng.create seed in
      let rows =
        Array.init num_rows (fun _ ->
            Array.init forest.Forest.num_features (fun _ -> Prng.gaussian rng))
      in
      let got = Tb_vm.Jit.compile (Tb_lir.Lower.lower forest Schedule.default) rows in
      check_int "rows" (Array.length want) (Array.length got);
      Array.iteri
        (fun i w ->
          if not (arrays_close w got.(i)) then
            Alcotest.failf "%s row %d: golden %s, got %s" name i
              (String.concat "," (List.map string_of_float (Array.to_list w)))
              (String.concat ","
                 (List.map string_of_float (Array.to_list got.(i)))))
        want;
      (* The reference scalar walk must agree too: a fixture can only go
         stale through a *semantic* change, never a schedule tweak. *)
      let reference = Forest.predict_batch_raw forest rows in
      Array.iteri
        (fun i w ->
          check_bool
            (Printf.sprintf "%s row %d matches reference walk" name i)
            true
            (arrays_close ~eps:1e-5 w reference.(i)))
        want
    end

let suite = List.map (fun name -> quick ("golden " ^ name) (test_golden name)) names
