(* Cost-model calibration (Tb_analysis.Cost_check): the agreement
   statistics are tested on synthetic observations where the ground truth
   is known exactly, each C00x detector on a seeded fault, and the full
   calibrate loop end to end on a small forest. *)

open Helpers
module Prng = Tb_util.Prng
module Stats = Tb_util.Stats
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Lower = Tb_lir.Lower
module Layout = Tb_lir.Layout
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model
module Cache = Tb_cpu.Cache
module Cost_check = Tb_analysis.Cost_check
module D = Tb_diag.Diagnostic

let target = Config.intel_rocket_lake

let has_code c ds = List.exists (fun d -> d.D.code = c) ds

let in_path sub ds =
  List.exists (fun d -> List.exists (String.equal sub) d.D.path) ds

(* A tolerance that never fires: isolates the statistics from the lint. *)
let loose =
  {
    Cost_check.event_rel_err = 1e9;
    stall_share_abs = 1.0;
    min_tau = -1.1;
    top_k = max_int;
    max_regret = infinity;
  }

(* --- Kendall-tau --- *)

let test_tau_perfect () =
  check_float "agreement" 1.0
    (Stats.kendall_tau [| 1.0; 2.0; 3.0; 4.0 |] [| 10.0; 20.0; 30.0; 40.0 |]);
  check_float "inversion" (-1.0)
    (Stats.kendall_tau [| 1.0; 2.0; 3.0; 4.0 |] [| 40.0; 30.0; 20.0; 10.0 |])

let test_tau_degenerate () =
  check_float "all ties" 0.0
    (Stats.kendall_tau [| 1.0; 2.0; 3.0 |] [| 5.0; 5.0; 5.0 |]);
  check_float "singleton" 0.0 (Stats.kendall_tau [| 1.0 |] [| 2.0 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.kendall_tau: length mismatch") (fun () ->
      ignore (Stats.kendall_tau [| 1.0 |] [| 1.0; 2.0 |]))

let test_tau_partial () =
  (* One discordant pair out of three: tau = (2 - 1) / 3. *)
  let tau = Stats.kendall_tau [| 1.0; 2.0; 3.0 |] [| 1.0; 3.0; 2.0 |] in
  check_float "one swap" (1.0 /. 3.0) tau

(* --- synthetic observations --- *)

let mk_workload ?(rows = 100) ~steps ~misses () =
  let accesses = rows * 40 in
  {
    Cost_model.rows;
    walks_checked = rows * 5;
    walks_unrolled = rows * 3;
    steps_checked = rows * steps;
    steps_unchecked = rows * steps * 2;
    leaf_fetches = rows * 8;
    critical_steps = rows * steps;
    l1 = { Cache.accesses; hits = accesses - misses; misses };
    code_bytes = 4096;
    model_bytes = 65536;
    tile_size = 4;
    layout = Layout.Sparse_kind;
  }

(* An observation whose measurement is a perfect oracle: measured events
   equal the extrapolated ones and wall clock is the model's own cycle
   count at a fixed frequency. *)
let honest_obs schedule w : Cost_check.observation =
  let b = Cost_model.estimate target w in
  {
    schedule;
    predicted = b;
    predicted_workload = w;
    measured_workload = w;
    measured_s_per_row = Cost_model.cycles_per_row b w /. 3.5e9;
  }

let sched i = { Schedule.default with tile_size = 1 + (i mod 8) }

let test_clean_calibration () =
  let obs =
    Array.init 5 (fun i ->
        honest_obs (sched i) (mk_workload ~steps:(4 + (3 * i)) ~misses:(100 * i) ()))
  in
  let r = Cost_check.check ~target ~name:"clean" obs in
  check_float "tau" 1.0 r.Cost_check.tau;
  check_float "regret" 0.0 r.Cost_check.regret;
  check_int "champion = measured best" r.Cost_check.measured_best r.Cost_check.champion;
  check_bool "no findings" true (r.Cost_check.findings = []);
  List.iter
    (fun (e : Cost_check.event_error) -> check_float e.event 0.0 e.rel_err)
    r.Cost_check.worst_events

let test_c001_rank_inversion () =
  (* Predicted cost increases with steps; make the wall clock decrease, so
     the model's champion is the measured worst. *)
  let obs =
    Array.init 3 (fun i ->
        let w = mk_workload ~steps:(4 + (4 * i)) ~misses:0 () in
        let o = honest_obs (sched i) w in
        { o with Cost_check.measured_s_per_row = 1e-6 /. float_of_int (i + 1) })
  in
  let r = Cost_check.check ~target ~name:"inverted" obs in
  check_bool "tau negative" true (r.Cost_check.tau < 0.0);
  check_bool "C001 emitted" true (has_code "C001" r.Cost_check.findings);
  check_bool "regret positive" true (r.Cost_check.regret > 0.0);
  (* No event or attribution drift was planted. *)
  check_bool "no C002" false (has_code "C002" r.Cost_check.findings);
  check_bool "no C003" false (has_code "C003" r.Cost_check.findings)

let test_c002_event_divergence () =
  (* The extrapolated workload undercounts leaf fetches by 2x — the shape
     of a broken Profiler.scale factor. Single observation: the rank lint
     (which needs a grid) stays out of the way. *)
  let w = mk_workload ~steps:8 ~misses:50 () in
  let wrong =
    { w with Cost_model.leaf_fetches = w.Cost_model.leaf_fetches / 2 }
  in
  let o = honest_obs (sched 0) w in
  let o =
    {
      o with
      Cost_check.predicted_workload = wrong;
      predicted = Cost_model.estimate target wrong;
    }
  in
  let r = Cost_check.check ~target ~name:"halved" [| o |] in
  check_bool "C002 emitted" true (has_code "C002" r.Cost_check.findings);
  check_bool "names leaf_fetches" true
    (in_path "leaf_fetches" r.Cost_check.findings);
  check_bool "no C001 on a single point" false
    (has_code "C001" r.Cost_check.findings)

let test_c002_structural_mismatch () =
  let w = mk_workload ~steps:8 ~misses:0 () in
  let o = honest_obs (sched 0) w in
  let o =
    {
      o with
      Cost_check.predicted_workload =
        { w with Cost_model.code_bytes = w.Cost_model.code_bytes * 2 };
    }
  in
  let r = Cost_check.check ~target ~name:"structural" [| o |] in
  check_bool "C002 emitted" true (has_code "C002" r.Cost_check.findings)

let test_c003_stall_attribution () =
  (* The breakdown scored by the autotuner came from a target with the L1
     miss penalty zeroed out; the measured events are honest. A memory-
     bound workload then shifts its predicted cycles into other buckets. *)
  let blind = { target with Config.l1_miss_penalty = 0.0 } in
  let w = mk_workload ~steps:2 ~misses:3200 () in
  let o = honest_obs (sched 0) w in
  let o = { o with Cost_check.predicted = Cost_model.estimate blind w } in
  let r = Cost_check.check ~target ~name:"blind-l1" [| o |] in
  check_bool "C003 emitted" true (has_code "C003" r.Cost_check.findings);
  check_bool "names backend_memory" true
    (in_path "backend_memory" r.Cost_check.findings);
  (* Event counts were untouched. *)
  check_bool "no C002" false (has_code "C002" r.Cost_check.findings)

let test_check_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Cost_check.check: no observations")
    (fun () -> ignore (Cost_check.check ~target ~name:"x" [||]))

(* --- observe / calibrate end to end --- *)

let small_forest seed =
  let rng = Prng.create seed in
  Forest.random ~num_trees:12 ~max_depth:6 ~num_features:6 rng

let test_observe_fields () =
  let forest = small_forest 11 in
  let rows = random_rows (Prng.create 12) 6 96 in
  let lowered = Lower.lower forest Schedule.default in
  let o =
    Cost_check.observe ~target ~sample:32 ~min_time_s:0.0 ~min_iters:1 lowered
      rows
  in
  check_int "extrapolated to the batch" 96 o.Cost_check.predicted_workload.Cost_model.rows;
  check_int "measured on the batch" 96 o.Cost_check.measured_workload.Cost_model.rows;
  check_bool "wall clock positive" true (o.Cost_check.measured_s_per_row > 0.0);
  check_bool "schedule threaded through" true (o.Cost_check.schedule = Schedule.default);
  (* Structural fields never drift between the two profiles. *)
  check_int "tile"
    o.Cost_check.measured_workload.Cost_model.tile_size
    o.Cost_check.predicted_workload.Cost_model.tile_size;
  check_int "code bytes"
    o.Cost_check.measured_workload.Cost_model.code_bytes
    o.Cost_check.predicted_workload.Cost_model.code_bytes

let test_calibrate_end_to_end () =
  let forest = small_forest 21 in
  let rows = random_rows (Prng.create 22) 6 64 in
  let rejected = { Schedule.default with tile_size = 3 } in
  let grid = [ Schedule.scalar_baseline; Schedule.default; rejected ] in
  let compile schedule =
    if schedule = rejected then Error "rejected for the test"
    else Ok (Lower.lower forest schedule)
  in
  let r =
    Cost_check.calibrate ~target ~tol:loose ~sample:16 ~min_time_s:0.0
      ~min_iters:1 ~compile ~name:"e2e" ~grid rows
  in
  check_int "observations" 2 (Array.length r.Cost_check.observations);
  check_int "skipped" 1 (List.length r.Cost_check.skipped);
  check_bool "skip reason kept" true
    (List.exists (fun (_, m) -> m = "rejected for the test") r.Cost_check.skipped);
  check_bool "loose tolerance finds nothing" true (r.Cost_check.findings = []);
  (* The report serializes both ways. *)
  let js = Tb_util.Json.to_string (Cost_check.report_to_json r) in
  check_bool "json mentions model" true
    (Tb_util.Json.member "model" (Tb_util.Json.of_string js) = Tb_util.Json.Str "e2e");
  let s = Cost_check.report_to_string r in
  check_bool "summary mentions tau" true
    (String.length s > 0 &&
     (let rec find i = i + 11 <= String.length s
          && (String.sub s i 11 = "kendall-tau" || find (i + 1)) in
      find 0))

let test_explore_champion_guard () =
  let forest = small_forest 41 in
  let rows = random_rows (Prng.create 42) 6 64 in
  let result = Tb_core.Explore.greedy ~target forest rows in
  let rivals = [ Schedule.scalar_baseline; Schedule.default ] in
  let report, c001 =
    Tb_core.Explore.check_champion ~target ~sample:16 ~rivals ~tol:loose
      forest rows result
  in
  check_bool "champion observed" true
    (Array.exists
       (fun (o : Cost_check.observation) ->
         o.schedule = result.Tb_core.Explore.schedule)
       report.Cost_check.observations);
  check_bool "rivals observed" true
    (Array.length report.Cost_check.observations >= List.length rivals);
  check_bool "loose tolerance raises no rank findings" true (c001 = [])

let test_reduced_grid_is_valid () =
  check_bool "non-trivial" true (List.length Cost_check.reduced_grid >= 12);
  List.iter
    (fun s ->
      (match Schedule.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid grid point %s: %s" (Schedule.to_string s) m);
      check_int "single-threaded" 1 s.Schedule.num_threads)
    Cost_check.reduced_grid;
  (* Every point must actually compile on an ordinary forest. *)
  let forest = small_forest 31 in
  List.iter
    (fun s -> ignore (Lower.lower forest s))
    Cost_check.reduced_grid

let suite =
  [
    quick "kendall-tau perfect / inverted" test_tau_perfect;
    quick "kendall-tau degenerate inputs" test_tau_degenerate;
    quick "kendall-tau partial agreement" test_tau_partial;
    quick "clean calibration has no findings" test_clean_calibration;
    quick "C001 on rank inversion" test_c001_rank_inversion;
    quick "C002 on event divergence" test_c002_event_divergence;
    quick "C002 on structural mismatch" test_c002_structural_mismatch;
    quick "C003 on stall-attribution drift" test_c003_stall_attribution;
    quick "check rejects empty input" test_check_rejects_empty;
    quick "observe fills every field" test_observe_fields;
    quick "calibrate end to end with skips" test_calibrate_end_to_end;
    quick "explore champion guard" test_explore_champion_guard;
    quick "reduced grid is valid" test_reduced_grid_is_valid;
  ]
