(* The serving runtime: queue backpressure, dynamic batching, eviction
   policies, virtual-clock determinism, and the headline property — served
   outputs are bitwise identical to a direct single-call JIT prediction. *)

open Helpers
module Prng = Tb_util.Prng
module H = Tb_util.Stats.Histogram
module Schedule = Tb_hir.Schedule
module Forest = Tb_model.Forest
module Policy = Tb_serve.Policy
module Rqueue = Tb_serve.Rqueue
module Batcher = Tb_serve.Batcher
module Registry = Tb_serve.Registry
module Runtime = Tb_serve.Runtime
module Simulate = Tb_serve.Simulate

(* ---------------- histogram ---------------- *)

let test_histogram_quantiles () =
  let h = H.create () in
  for i = 1 to 1000 do
    H.add h (float_of_int i)
  done;
  check_int "count" 1000 (H.count h);
  check_float "min" 1.0 (H.min_value h);
  check_float "max" 1000.0 (H.max_value h);
  (* Geometric buckets at 16/decade: a quantile can be off by up to one
     bucket's relative width, 10^(1/16) - 1 = 15.5%. *)
  let close ~exact q =
    let v = H.quantile h q in
    check_bool
      (Printf.sprintf "q%.2f %.1f within 16%% of %.1f" q v exact)
      true
      (Float.abs (v -. exact) /. exact < 0.16)
  in
  close ~exact:500.0 0.5;
  close ~exact:990.0 0.99;
  check_float "mean" 500.5 (H.mean h)

let test_histogram_empty () =
  let h = H.create () in
  check_int "count" 0 (H.count h);
  check_float "quantile of empty" 0.0 (H.quantile h 0.5);
  check_float "mean of empty" 0.0 (H.mean h)

(* ---------------- bounded queue ---------------- *)

let test_rqueue_backpressure () =
  let q = Rqueue.create ~capacity:2 in
  check_bool "push 1" true (Rqueue.try_push q 1);
  check_bool "push 2" true (Rqueue.try_push q 2);
  check_bool "push 3 rejected" false (Rqueue.try_push q 3);
  check_int "length" 2 (Rqueue.length q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Rqueue.pop_opt q);
  check_bool "push after pop" true (Rqueue.try_push q 4);
  Rqueue.drop_n q 2;
  check_int "drained" 0 (Rqueue.length q);
  let s = Rqueue.stats q in
  check_int "pushed" 3 s.Rqueue.pushed;
  check_int "rejected" 1 s.Rqueue.rejected;
  check_int "max depth" 2 s.Rqueue.max_depth

let test_rqueue_mpsc () =
  (* Four domains race 1000 pushes each into a queue bounded well below
     the total: accounting must stay exact under contention. *)
  let q = Rqueue.create ~capacity:128 in
  let per_domain = 1000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let accepted = ref 0 in
            for i = 1 to per_domain do
              if Rqueue.try_push q i then incr accepted
            done;
            !accepted))
  in
  let accepted = List.fold_left (fun a d -> a + Domain.join d) 0 domains in
  let s = Rqueue.stats q in
  check_int "pushed = accepted" accepted s.Rqueue.pushed;
  check_int "pushed + rejected = attempts" (4 * per_domain)
    (s.Rqueue.pushed + s.Rqueue.rejected);
  check_int "queue holds the un-popped" accepted (Rqueue.length q);
  check_bool "bounded" true (Rqueue.length q <= 128)

(* ---------------- batcher ---------------- *)

let test_batcher_size_trigger () =
  let b = Batcher.create { Batcher.batch_max = 3; deadline_us = 1000.0 } in
  let add t i = Batcher.add b ~model:"m" ~arrival_us:t i in
  check_bool "1st" true (add 0.0 1 = None);
  check_bool "2nd" true (add 10.0 2 = None);
  (match add 20.0 3 with
  | Some batch ->
    check_int "size" 3 (Array.length batch.Batcher.requests);
    check_bool "cause" true (batch.Batcher.cause = Batcher.By_size);
    check_float "formed at admitting arrival" 20.0 batch.Batcher.formed_us;
    Alcotest.(check (array int)) "admission order" [| 1; 2; 3 |]
      batch.Batcher.requests
  | None -> Alcotest.fail "size trigger did not fire");
  check_int "group drained" 0 (Batcher.pending_count b)

let test_batcher_deadline_trigger () =
  let b = Batcher.create { Batcher.batch_max = 100; deadline_us = 50.0 } in
  ignore (Batcher.add b ~model:"a" ~arrival_us:0.0 1);
  ignore (Batcher.add b ~model:"b" ~arrival_us:10.0 2);
  ignore (Batcher.add b ~model:"a" ~arrival_us:20.0 3);
  Alcotest.(check (option (float 1e-9))) "next deadline = oldest + d"
    (Some 50.0) (Batcher.next_deadline b);
  check_bool "nothing expires early" true (Batcher.expire b ~now:49.0 = []);
  (match Batcher.expire b ~now:60.0 with
  | [ ba ; bb ] ->
    (* a (deadline 50) before b (deadline 60); each stamped at its own
       deadline, not at [now]. *)
    Alcotest.(check string) "first model" "a" ba.Batcher.model;
    check_float "a formed at its deadline" 50.0 ba.Batcher.formed_us;
    check_int "a size" 2 (Array.length ba.Batcher.requests);
    check_bool "a cause" true (ba.Batcher.cause = Batcher.By_deadline);
    Alcotest.(check string) "second model" "b" bb.Batcher.model;
    check_float "b formed at its deadline" 60.0 bb.Batcher.formed_us
  | l -> Alcotest.failf "expected 2 batches, got %d" (List.length l));
  check_int "all drained" 0 (Batcher.pending_count b)

let test_batcher_flush () =
  let b = Batcher.create { Batcher.batch_max = 100; deadline_us = 1e9 } in
  ignore (Batcher.add b ~model:"x" ~arrival_us:0.0 1);
  ignore (Batcher.add b ~model:"y" ~arrival_us:1.0 2);
  let batches = Batcher.flush b ~now:5.0 in
  check_int "two groups" 2 (List.length batches);
  List.iter
    (fun ba -> check_bool "flush cause" true (ba.Batcher.cause = Batcher.By_flush))
    batches;
  check_int "empty after flush" 0 (Batcher.pending_count b)

(* ---------------- eviction policies ---------------- *)

let test_policy_capacity () =
  List.iter
    (fun kind ->
      let c = Policy.create ~capacity:4 kind in
      for i = 0 to 99 do
        (* A touch now and then gives SIEVE's hand real work. *)
        ignore (Policy.find c (i / 2));
        ignore (Policy.put c i (10 * i))
      done;
      let name = Policy.kind_to_string kind in
      check_bool (name ^ " bounded") true
        (List.length (Policy.contents c) <= 4);
      let s = Policy.stats c in
      check_int (name ^ " insert - evict = live") (List.length (Policy.contents c))
        (s.Policy.insertions - s.Policy.evictions))
    [ Policy.Lru; Policy.Sieve ]

let test_policy_lru_order () =
  let c = Policy.create ~capacity:3 Policy.Lru in
  ignore (Policy.put c "a" 1);
  ignore (Policy.put c "b" 2);
  ignore (Policy.put c "c" 3);
  (* Touch a: the least-recently-used is now b. *)
  check_bool "hit a" true (Policy.find c "a" <> None);
  (match Policy.put c "d" 4 with
  | Some (k, v) ->
    Alcotest.(check string) "evicts LRU victim" "b" k;
    check_int "victim value" 2 v
  | None -> Alcotest.fail "expected an eviction");
  check_bool "a survives" true (Policy.mem c "a");
  check_bool "c survives" true (Policy.mem c "c");
  check_bool "d present" true (Policy.mem c "d")

let test_policy_sieve_second_chance () =
  (* Hand-traced SIEVE: visited entries get a second chance; the hand
     resumes where it stopped. *)
  let c = Policy.create ~capacity:3 Policy.Sieve in
  ignore (Policy.put c "a" 1);
  ignore (Policy.put c "b" 2);
  ignore (Policy.put c "c" 3);
  check_bool "hit a" true (Policy.find c "a" <> None);
  (* Sweep from the tail: a is visited (cleared, spared) -> b unvisited,
     evicted. *)
  (match Policy.put c "d" 4 with
  | Some ("b", _) -> ()
  | Some (k, _) -> Alcotest.failf "evicted %s, expected b" k
  | None -> Alcotest.fail "expected an eviction");
  (* a's mark was consumed by the sweep; nothing is visited now and the
     hand sits at c. Next eviction takes c. *)
  (match Policy.put c "e" 5 with
  | Some ("c", _) -> ()
  | Some (k, _) -> Alcotest.failf "evicted %s, expected c" k
  | None -> Alcotest.fail "expected an eviction");
  check_bool "a still cached" true (Policy.mem c "a")

let test_policy_sieve_scan_resistance () =
  (* A hot set of 4 keys re-touched between one-hit-wonder scan keys:
     SIEVE's visited bits shield the hot set, LRU flushes it. The same
     deterministic trace drives both policies. *)
  let trace = ref [] in
  let rng = Prng.create 99 in
  for i = 0 to 599 do
    trace := ("hot" ^ string_of_int (Prng.int rng 4)) :: !trace;
    if i mod 2 = 0 then trace := ("scan" ^ string_of_int i) :: !trace
  done;
  let trace = List.rev !trace in
  let run kind =
    let c = Policy.create ~capacity:6 kind in
    List.iter
      (fun k ->
        match Policy.find c k with
        | Some _ -> ()
        | None -> ignore (Policy.put c k 0))
      trace;
    Policy.hit_ratio c
  in
  let lru = run Policy.Lru and sieve = run Policy.Sieve in
  check_bool
    (Printf.sprintf "sieve %.3f >= lru %.3f on scan-with-hot-set" sieve lru)
    true (sieve >= lru);
  check_bool "sieve keeps the hot set" true (sieve > 0.4)

(* ---------------- registry ---------------- *)

let small_registry ?(policy = Policy.Lru) ?(capacity = 8) seed =
  let rng = Prng.create seed in
  let reg = Registry.create ~policy ~capacity () in
  let forest =
    Forest.random ~num_trees:5 ~max_depth:4 ~num_features:6 rng
  in
  Registry.register reg ~name:"m0" forest;
  (reg, forest)

(* Provenance as a plain hit flag, for the cache-sharing assertions. *)
let is_hit = function `Hit -> true | `Disk | `Compile -> false

let test_registry_cache_and_thread_normalization () =
  let reg, _ = small_registry 3 in
  let s8 = { Schedule.default with Schedule.num_threads = 8 } in
  let s1 = { Schedule.default with Schedule.num_threads = 1 } in
  let _, hit1 = Registry.compiled reg ~model:"m0" ~schedule:s8 in
  check_bool "first lookup misses" false (is_hit hit1);
  (* Thread counts are normalized to 1 per worker, so these two schedules
     share one cache entry — no recompile. *)
  let _, hit2 = Registry.compiled reg ~model:"m0" ~schedule:s1 in
  check_bool "normalized schedule hits" true (is_hit hit2);
  check_int "one compile" 1 (Registry.compile_count reg);
  check_int "one clamp warning" 1 (List.length (Registry.clamp_warnings reg));
  (* Canonicalization: fields the backend provably ignores must not fork
     the cache. Basic tiling never reads alpha/beta ... *)
  let base =
    (* interleave differs from Schedule.default so this is a fresh entry *)
    { Schedule.default with
      Schedule.tiling = Schedule.Basic; alpha = 0.05; interleave = 2 }
  in
  let _, hit3 = Registry.compiled reg ~model:"m0" ~schedule:base in
  check_bool "basic-tiling alpha variant compiles once" false (is_hit hit3);
  let _, hit4 =
    Registry.compiled reg ~model:"m0"
      ~schedule:{ base with Schedule.alpha = 0.1; beta = 0.5 }
  in
  check_bool "basic-tiling alpha/beta variant hits" true (is_hit hit4);
  (* ... an unpadded schedule never reads pad_imbalance_limit ... *)
  let _, hit5 =
    Registry.compiled reg ~model:"m0"
      ~schedule:{ base with Schedule.pad_and_unroll = false }
  in
  check_bool "unpadded variant compiles once" false (is_hit hit5);
  let _, hit6 =
    Registry.compiled reg ~model:"m0"
      ~schedule:
        { base with Schedule.pad_and_unroll = false; pad_imbalance_limit = 7 }
  in
  check_bool "pad-limit-without-padding variant hits" true (is_hit hit6);
  (* ... and at tile_size 1 the tiling kind is irrelevant. *)
  let nt1 = { base with Schedule.tile_size = 1 } in
  let _, hit7 = Registry.compiled reg ~model:"m0" ~schedule:nt1 in
  check_bool "tile_size-1 variant compiles once" false (is_hit hit7);
  let _, hit8 =
    Registry.compiled reg ~model:"m0"
      ~schedule:{ nt1 with Schedule.tiling = Schedule.Probability_based }
  in
  check_bool "tile_size-1 tiling-kind variant hits" true (is_hit hit8);
  (* default, base, unpadded, tile-size-1 — every other lookup hit. *)
  check_int "four compiles total" 4 (Registry.compile_count reg)

(* ---------------- schedule clamp + S013 ---------------- *)

let test_clamp_threads_boundary () =
  let cores = 8 in
  let at = { Schedule.default with Schedule.num_threads = cores } in
  let over = { Schedule.default with Schedule.num_threads = cores + 1 } in
  (match Schedule.clamp_threads ~max_threads:cores at with
  | s, None -> check_int "at the limit: untouched" cores s.Schedule.num_threads
  | _, Some w -> Alcotest.failf "unexpected warning at the boundary: %s" w);
  (match Schedule.clamp_threads ~max_threads:cores over with
  | s, Some _ -> check_int "over the limit: clamped" cores s.Schedule.num_threads
  | _, None -> Alcotest.fail "expected a clamp warning");
  Alcotest.check_raises "max_threads < 1 rejected"
    (Invalid_argument "Schedule.clamp_threads: max_threads < 1") (fun () ->
      ignore (Schedule.clamp_threads ~max_threads:0 at))

let test_s013_core_oversubscription () =
  let module D = Tb_diag.Diagnostic in
  let module Hir_check = Tb_analysis.Hir_check in
  let has_s013 ds = List.exists (fun d -> d.D.code = "S013") ds in
  let s = { Schedule.default with Schedule.num_threads = 9 } in
  check_bool "9 threads on 8 cores warns" true
    (has_s013 (Hir_check.check_schedule ~batch_size:1024 ~cores:8 s));
  check_bool "9 threads on 16 cores is fine" false
    (has_s013 (Hir_check.check_schedule ~batch_size:1024 ~cores:16 s));
  check_bool "no cores given, no S013" false
    (has_s013 (Hir_check.check_schedule ~batch_size:1024 s))

(* ---------------- warm-start profiler ---------------- *)

let test_warm_start_misses () =
  let rng = Prng.create 11 in
  let forest = Forest.random ~num_trees:8 ~max_depth:5 ~num_features:8 rng in
  let lowered = Tb_lir.Lower.lower forest Schedule.default in
  let rows = random_rows rng 8 48 in
  let target = Tb_cpu.Config.intel_rocket_lake in
  let cold = Tb_vm.Profiler.profile ~target lowered rows in
  let warm = Tb_vm.Profiler.profile ~target ~warm_start:true lowered rows in
  let misses (w : Tb_cpu.Cost_model.workload) = w.Tb_cpu.Cost_model.l1.Tb_cpu.Cache.misses in
  check_bool
    (Printf.sprintf "warm misses %d <= cold misses %d" (misses warm)
       (misses cold))
    true
    (misses warm <= misses cold);
  (* Warm-start must not change what the program does — only the cache
     temperature. *)
  check_int "same steps"
    (cold.Tb_cpu.Cost_model.steps_checked + cold.Tb_cpu.Cost_model.steps_unchecked)
    (warm.Tb_cpu.Cost_model.steps_checked + warm.Tb_cpu.Cost_model.steps_unchecked);
  check_int "same accesses" cold.Tb_cpu.Cost_model.l1.Tb_cpu.Cache.accesses
    warm.Tb_cpu.Cost_model.l1.Tb_cpu.Cache.accesses

(* ---------------- arrivals ---------------- *)

let test_arrivals_sorted_and_deterministic () =
  List.iter
    (fun kind ->
      let gen seed =
        Simulate.gen_arrivals (Prng.create seed) kind ~rate_rps:50_000.0
          ~n:500
      in
      let a = gen 5 and b = gen 5 and c = gen 6 in
      let name = Simulate.arrival_kind_to_string kind in
      check_int (name ^ " count") 500 (Array.length a);
      check_bool (name ^ " non-decreasing") true
        (Array.for_all2 (fun x y -> x <= y) (Array.sub a 0 499)
           (Array.sub a 1 499));
      check_bool (name ^ " starts >= 0") true (a.(0) >= 0.0);
      check_bool (name ^ " same seed, same trace") true (a = b);
      check_bool (name ^ " different seed, different trace") true (a <> c))
    [ Simulate.Poisson; Simulate.Burst 8; Simulate.Ramp ]

let test_arrival_kind_parse () =
  check_bool "poisson" true
    (Simulate.arrival_kind_of_string "poisson" = Ok Simulate.Poisson);
  check_bool "burst default" true
    (Simulate.arrival_kind_of_string "burst" = Ok (Simulate.Burst 8));
  check_bool "burst:4" true
    (Simulate.arrival_kind_of_string "burst:4" = Ok (Simulate.Burst 4));
  check_bool "ramp" true
    (Simulate.arrival_kind_of_string "RAMP" = Ok Simulate.Ramp);
  check_bool "junk rejected" true
    (match Simulate.arrival_kind_of_string "uniform" with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "burst:0 rejected" true
    (match Simulate.arrival_kind_of_string "burst:0" with
    | Error _ -> true
    | Ok _ -> false)

(* ---------------- runtime ---------------- *)

let mk_requests rng ~n ~models ~features ~rate =
  let arrivals =
    Simulate.gen_arrivals rng Simulate.Poisson ~rate_rps:rate ~n
  in
  Array.mapi
    (fun i at ->
      {
        Runtime.id = i;
        model = Prng.choose rng models;
        row = random_row rng features;
        arrival_us = at;
      })
    arrivals

let test_runtime_accounting () =
  let reg, _ = small_registry 21 in
  let rng = Prng.create 22 in
  let requests =
    mk_requests rng ~n:400 ~models:[| "m0" |] ~features:6 ~rate:100_000.0
  in
  let r = Runtime.run ~schedule:Schedule.default reg requests in
  let m = r.Runtime.metrics in
  check_int "arrivals" 400 m.Tb_serve.Metrics.arrivals;
  check_int "admitted + rejected = arrivals" 400
    (m.Tb_serve.Metrics.admitted + m.Tb_serve.Metrics.rejected);
  check_int "completed = admitted" m.Tb_serve.Metrics.admitted
    m.Tb_serve.Metrics.completed;
  check_int "no equivalence failures" 0 r.Runtime.equivalence_failures;
  check_int "every request resolved" 400
    (Array.fold_left (fun a o -> if o <> None then a + 1 else a) 0 r.Runtime.outputs
    + List.length r.Runtime.rejects);
  let sizes =
    List.fold_left (fun a b -> a + Array.length b.Runtime.requests) 0 r.Runtime.batches
  in
  check_int "batch contents = completed" m.Tb_serve.Metrics.completed sizes;
  List.iter
    (fun (b : Runtime.batch_exec) ->
      check_bool "batch within max" true
        (Array.length b.Runtime.requests <= Runtime.default_config.Runtime.batch_max);
      check_bool "starts after formation" true (b.Runtime.start_us >= b.Runtime.formed_us))
    r.Runtime.batches

let test_runtime_backpressure () =
  let reg, _ = small_registry 31 in
  let rng = Prng.create 32 in
  let requests =
    mk_requests rng ~n:600 ~models:[| "m0" |] ~features:6 ~rate:10_000_000.0
  in
  let config =
    {
      Runtime.default_config with
      Runtime.queue_capacity = 8;
      batch_max = 4;
      workers = 1;
    }
  in
  let r = Runtime.run ~config ~schedule:Schedule.default reg requests in
  check_bool "overload sheds load" true (r.Runtime.rejects <> []);
  List.iter
    (fun (req : Runtime.request) ->
      check_bool "rejected request has no output" true
        (r.Runtime.outputs.(req.Runtime.id) = None))
    r.Runtime.rejects;
  check_bool "queue depth bounded by capacity" true
    (r.Runtime.queue_stats.Rqueue.max_depth <= 8)

let test_runtime_deterministic () =
  let run () =
    let reg, _ = small_registry ~policy:Policy.Sieve ~capacity:2 41 in
    let rng = Prng.create 42 in
    let requests =
      mk_requests rng ~n:300 ~models:[| "m0" |] ~features:6 ~rate:200_000.0
    in
    let r = Runtime.run ~schedule:Schedule.default reg requests in
    ( Tb_util.Json.to_string (Tb_serve.Metrics.to_json r.Runtime.metrics),
      r.Runtime.outputs )
  in
  let j1, o1 = run () and j2, o2 = run () in
  check_string "identical metrics JSON" j1 j2;
  check_bool "identical outputs" true (o1 = o2)

(* ---------------- serve == JIT (the headline property) ---------------- *)

let grid = Array.of_list Schedule.table2_grid

let serve_equiv_property (seed, policy) =
  let rng = Prng.create seed in
  let num_features = 6 in
  let num_models = 1 + Prng.int rng 3 in
  let reg = Registry.create ~policy ~capacity:2 () in
  let forests =
    Array.init num_models (fun i ->
        let f =
          Forest.random
            ~num_trees:(1 + Prng.int rng 8)
            ~max_depth:(2 + Prng.int rng 4)
            ~num_features rng
        in
        let name = "m" ^ string_of_int i in
        Registry.register reg ~name f;
        (name, f))
  in
  let schedule = grid.(Prng.int rng (Array.length grid)) in
  let n = 40 + Prng.int rng 120 in
  let requests =
    mk_requests rng ~n
      ~models:(Array.map fst forests)
      ~features:num_features ~rate:(50_000.0 +. Prng.float rng 400_000.0)
  in
  let config =
    {
      Runtime.default_config with
      Runtime.batch_max = 1 + Prng.int rng 16;
      deadline_us = 50.0 +. Prng.float rng 1000.0;
      workers = 1 + Prng.int rng 3;
    }
  in
  let r = Runtime.run ~config ~schedule reg requests in
  (* The runtime's own cross-check must be clean... *)
  if r.Runtime.equivalence_failures <> 0 then
    QCheck2.Test.fail_reportf "runtime reports %d equivalence failures"
      r.Runtime.equivalence_failures;
  (* ...and so must an independent one against a fresh single-thread JIT
     (thread count normalized exactly as a serving worker would). *)
  let normalized, _ = Schedule.clamp_threads ~max_threads:1 schedule in
  Array.iter
    (fun (name, forest) ->
      let predict =
        Tb_vm.Jit.compile_single_thread (Tb_lir.Lower.lower forest normalized)
      in
      let served =
        Array.to_list requests
        |> List.filter (fun (q : Runtime.request) ->
               q.Runtime.model = name && r.Runtime.outputs.(q.Runtime.id) <> None)
      in
      if served <> [] then begin
        let direct =
          predict
            (Array.of_list
               (List.map (fun (q : Runtime.request) -> q.Runtime.row) served))
        in
        List.iteri
          (fun i (q : Runtime.request) ->
            match r.Runtime.outputs.(q.Runtime.id) with
            | Some got ->
              if
                not
                  (Array.length got = Array.length direct.(i)
                  && Array.for_all2 Float.equal got direct.(i))
              then
                QCheck2.Test.fail_reportf
                  "request %d (model %s): served output differs from JIT"
                  q.Runtime.id name
            | None -> ())
          served
      end)
    forests;
  true

let serve_equiv_gen =
  QCheck2.Gen.pair seed_gen
    (QCheck2.Gen.oneofl [ Policy.Lru; Policy.Sieve ])

(* ---------------- simulate end-to-end ---------------- *)

let test_simulate_deterministic_report () =
  let rng = Prng.create 77 in
  let forest = Forest.random ~num_trees:6 ~max_depth:4 ~num_features:5 rng in
  let models =
    [
      {
        Simulate.name = "rand";
        forest;
        profiles = None;
        pool = random_rows rng 5 32;
        weight = 1;
        slo_us = None;
      };
    ]
  in
  let config =
    { Simulate.default_config with Simulate.num_requests = 250 }
  in
  let report () =
    Tb_util.Json.to_string ~indent:true
      (Simulate.report_to_json (Simulate.run config models))
  in
  check_string "same seed, byte-identical report" (report ()) (report ());
  let shifted =
    Tb_util.Json.to_string ~indent:true
      (Simulate.report_to_json
         (Simulate.run { config with Simulate.seed = 43 } models))
  in
  check_bool "different seed, different report" true (report () <> shifted)

(* ---------------- dual clock: drift math, calibration, wall mode -------- *)

module Serve_check = Tb_analysis.Serve_check
module Metrics = Tb_serve.Metrics
module J = Tb_util.Json

let test_serve_check_drift_math () =
  let samples =
    List.init 10 (fun _ ->
        { Serve_check.rows = 2; virtual_us = 10.0; wall_us = 20.0 })
  in
  let compiles =
    [ { Serve_check.modeled_us = 100.0; wall_compile_us = 400.0 } ]
  in
  let d = Serve_check.drift_of_samples ~model:"m" samples compiles in
  check_int "batches" 10 d.Serve_check.batches;
  check_int "rows" 20 d.Serve_check.rows;
  check_float "service ratio = sum wall / sum virtual" 2.0
    d.Serve_check.service_ratio;
  check_int "percentile count" 3 (List.length d.Serve_check.percentiles);
  List.iter
    (fun (_, v, w) ->
      check_float "virtual quantile" 10.0 v;
      check_float "wall quantile" 20.0 w)
    d.Serve_check.percentiles;
  check_int "compiles" 1 d.Serve_check.compiles;
  (match d.Serve_check.compile_ratio with
  | Some r -> check_float "compile ratio" 4.0 r
  | None -> Alcotest.fail "compile ratio missing");
  let d0 = Serve_check.drift_of_samples ~model:"m" samples [] in
  check_bool "no compile measured -> no compile ratio" true
    (d0.Serve_check.compile_ratio = None)

let test_serve_check_tolerances () =
  let mk ~n ~virtual_us ~wall_us compiles =
    Serve_check.drift_of_samples ~model:"m"
      (List.init n (fun _ -> { Serve_check.rows = 1; virtual_us; wall_us }))
      compiles
  in
  let codes ds = List.map (fun d -> d.Tb_diag.Diagnostic.code) ds in
  (* Within the corridor: ratio 2 against tolerance 25 is fine. *)
  check_bool "small drift passes" true
    (Serve_check.check [ mk ~n:10 ~virtual_us:10.0 ~wall_us:20.0 [] ] = []);
  (* Beyond it, in either direction. *)
  check_bool "wall >> virtual fires V001" true
    (codes (Serve_check.check [ mk ~n:10 ~virtual_us:1.0 ~wall_us:100.0 [] ])
    = [ "V001"; "V001"; "V001" ]);
  check_bool "virtual >> wall fires V001 too" true
    (List.mem "V001"
       (codes
          (Serve_check.check [ mk ~n:10 ~virtual_us:100.0 ~wall_us:1.0 [] ])));
  (* Too few batches: one noisy measurement must not fail a run. *)
  check_bool "below min_batches stays silent" true
    (Serve_check.check [ mk ~n:3 ~virtual_us:1.0 ~wall_us:1000.0 [] ] = []);
  (* Compile drift is judged independently of service drift. *)
  let compile_off =
    mk ~n:10 ~virtual_us:10.0 ~wall_us:20.0
      [ { Serve_check.modeled_us = 1.0; wall_compile_us = 1000.0 } ]
  in
  check_bool "compile drift fires V002" true
    (codes (Serve_check.check [ compile_off ]) = [ "V002" ])

let test_interleave_clamp_cache_hit () =
  (* m0 has 5 trees. A row-major walk interleaves tree groups, and MIR
     clamps the jam factor at the group size — so interleave 8 and 5
     compile to the same artifact and must share one cache entry. *)
  let reg, _ = small_registry 51 in
  let row k =
    { Schedule.default with
      Schedule.loop_order = Schedule.One_row_at_a_time; interleave = k }
  in
  let _, h1 = Registry.compiled reg ~model:"m0" ~schedule:(row 8) in
  check_bool "row-major interleave 8 compiles" false (is_hit h1);
  let _, h2 = Registry.compiled reg ~model:"m0" ~schedule:(row 5) in
  check_bool "row-major interleave 5 hits the clamped entry" true (is_hit h2);
  let _, h3 = Registry.compiled reg ~model:"m0" ~schedule:(row 16) in
  check_bool "row-major interleave 16 hits too" true (is_hit h3);
  check_int "one compile for the clamped family" 1
    (Registry.compile_count reg);
  (* Below the tree count the factor is meaningful: distinct entries. *)
  let _, h4 = Registry.compiled reg ~model:"m0" ~schedule:(row 3) in
  check_bool "row-major interleave 3 is a different artifact" false (is_hit h4);
  (* Tree-major interleave jams rows, not trees — never clamped. *)
  let tree k = { Schedule.default with Schedule.interleave = k } in
  let _, h5 = Registry.compiled reg ~model:"m0" ~schedule:(tree 8) in
  let _, h6 = Registry.compiled reg ~model:"m0" ~schedule:(tree 5) in
  check_bool "tree-major 8 compiles" false (is_hit h5);
  check_bool "tree-major 5 compiles separately" false (is_hit h6)

let test_registry_calibration () =
  let reg, _ = small_registry 61 in
  let c0, _ = Registry.compiled reg ~model:"m0" ~schedule:Schedule.default in
  let u0 = c0.Registry.us_per_row and k0 = c0.Registry.compile_us in
  check_bool "baseline costs positive" true (u0 > 0.0 && k0 > 0.0);
  Registry.calibrate reg
    { Registry.service_scale = [ ("m0", 2.0) ]; compile_scale = Some 3.0 };
  (* The cached entry is rescaled in place... *)
  check_float "cached us_per_row rescaled" (2.0 *. u0) c0.Registry.us_per_row;
  check_float "cached compile_us rescaled" (3.0 *. k0) c0.Registry.compile_us;
  let c0', hit = Registry.compiled reg ~model:"m0" ~schedule:Schedule.default in
  check_bool "calibration does not evict" true (is_hit hit);
  check_float "hit returns the rescaled entry" (2.0 *. u0)
    c0'.Registry.us_per_row;
  (* ... and future compiles carry the scales. *)
  let s2 = { Schedule.default with Schedule.tile_size = 4 } in
  let c2, _ = Registry.compiled reg ~model:"m0" ~schedule:s2 in
  let fresh, _ = small_registry 61 in
  let d2, _ = Registry.compiled fresh ~model:"m0" ~schedule:s2 in
  check_float "future compile's service model scaled"
    (2.0 *. d2.Registry.us_per_row) c2.Registry.us_per_row;
  check_float "future compile's compile model scaled"
    (3.0 *. d2.Registry.compile_us) c2.Registry.compile_us;
  (* Calibrations compose multiplicatively (and can undo each other). *)
  Registry.calibrate reg
    { Registry.service_scale = [ ("m0", 0.5) ];
      compile_scale = Some (1.0 /. 3.0) };
  check_float "scales compose back to baseline" u0 c0.Registry.us_per_row

let test_calibration_of_drift () =
  let sample virtual_us wall_us =
    { Serve_check.rows = 1; virtual_us; wall_us }
  in
  let da =
    Serve_check.drift_of_samples ~model:"a"
      (List.init 8 (fun _ -> sample 10.0 30.0))
      [ { Serve_check.modeled_us = 100.0; wall_compile_us = 500.0 } ]
  in
  let db =
    Serve_check.drift_of_samples ~model:"b"
      (List.init 8 (fun _ -> sample 10.0 5.0))
      []
  in
  let cal = Registry.calibration_of_drift [ da; db ] in
  check_int "one service scale per model" 2
    (List.length cal.Registry.service_scale);
  check_float "a's scale is its wall/virtual ratio" 3.0
    (List.assoc "a" cal.Registry.service_scale);
  check_float "b's scale corrects downward" 0.5
    (List.assoc "b" cal.Registry.service_scale);
  (match cal.Registry.compile_scale with
  | Some s -> check_float "compile scale from the only measured model" 5.0 s
  | None -> Alcotest.fail "compile scale missing");
  let none = Registry.calibration_of_drift [ db ] in
  check_bool "no compile measured -> no compile scale" true
    (none.Registry.compile_scale = None)

let test_runtime_dual_wall_sanity () =
  let reg, _ = small_registry 71 in
  let rng = Prng.create 72 in
  let requests =
    mk_requests rng ~n:300 ~models:[| "m0" |] ~features:6 ~rate:200_000.0
  in
  let r =
    Runtime.run ~mode:Runtime.Dual ~schedule:Schedule.default reg requests
  in
  check_int "dual mode keeps equivalence" 0 r.Runtime.equivalence_failures;
  List.iter
    (fun (b : Runtime.batch_exec) ->
      check_bool "every batch has a finite wall measurement" true
        (Float.is_finite b.Runtime.wall_predict_us
        && b.Runtime.wall_predict_us >= 0.0))
    r.Runtime.batches;
  let m = r.Runtime.metrics in
  check_int "wall set covers every completion" m.Metrics.completed
    m.Metrics.wall_completed;
  check_int "wall rows match virtual rows" m.Metrics.rows_served
    m.Metrics.wall_rows;
  check_bool "wall makespan positive" true (m.Metrics.wall_makespan_us > 0.0);
  check_bool "wall throughput positive" true
    (Metrics.wall_throughput_rows_per_s m > 0.0);
  (match r.Runtime.drift with
  | [ d ] ->
    check_string "drift is per registered model" "m0" d.Serve_check.model;
    check_int "drift pairs every batch" (List.length r.Runtime.batches)
      d.Serve_check.batches;
    check_bool "service ratio finite and positive" true
      (Float.is_finite d.Serve_check.service_ratio
      && d.Serve_check.service_ratio > 0.0);
    check_bool "misses were paired with compile samples" true
      (d.Serve_check.compiles >= 1)
  | l -> Alcotest.failf "expected 1 drift summary, got %d" (List.length l));
  (* A virtual run of the same trace measures nothing. *)
  let reg2, _ = small_registry 71 in
  let rv = Runtime.run ~schedule:Schedule.default reg2 requests in
  check_bool "virtual mode records no wall time" true
    (List.for_all
       (fun (b : Runtime.batch_exec) -> b.Runtime.wall_predict_us = 0.0)
       rv.Runtime.batches);
  check_int "virtual mode has no wall completions" 0
    rv.Runtime.metrics.Metrics.wall_completed;
  check_bool "virtual mode reports no drift" true (rv.Runtime.drift = [])

let test_runtime_wall_monotone_in_batch_size () =
  (* Bigger batches take longer on the wall clock. Comparing the median
     per-batch predict time of 1-row batches against 128-row batches
     leaves orders of magnitude of headroom for scheduler noise. *)
  let median_wall batch_max =
    let reg, _ = small_registry 81 in
    let rng = Prng.create 82 in
    let requests =
      mk_requests rng ~n:256 ~models:[| "m0" |] ~features:6 ~rate:10_000_000.0
    in
    let config =
      { Runtime.default_config with Runtime.batch_max; queue_capacity = 4096 }
    in
    let r =
      Runtime.run ~config ~mode:Runtime.Wall ~schedule:Schedule.default reg
        requests
    in
    let ws =
      List.map (fun b -> b.Runtime.wall_predict_us) r.Runtime.batches
      |> List.sort compare
    in
    check_bool "run produced batches" true (ws <> []);
    List.nth ws (List.length ws / 2)
  in
  let small = median_wall 1 and large = median_wall 128 in
  check_bool
    (Printf.sprintf "median wall predict: 128-row %.1fus > 1-row %.1fus"
       large small)
    true (large > small)

let test_dual_drift_fault_injection () =
  (* Inflate the modeled costs absurdly before a dual run: the virtual
     clock now disagrees with any real machine by orders of magnitude
     beyond the tolerance corridor, so V001 and V002 must fire. *)
  let reg, _ = small_registry 91 in
  Registry.calibrate reg
    { Registry.service_scale = [ ("m0", 1e6) ]; compile_scale = Some 1e8 };
  let rng = Prng.create 92 in
  let requests =
    mk_requests rng ~n:300 ~models:[| "m0" |] ~features:6 ~rate:200_000.0
  in
  let r =
    Runtime.run ~mode:Runtime.Dual ~schedule:Schedule.default reg requests
  in
  let codes =
    List.map (fun d -> d.Tb_diag.Diagnostic.code)
      (Serve_check.check r.Runtime.drift)
  in
  check_bool "inflated service model fires V001" true (List.mem "V001" codes);
  check_bool "inflated compile model fires V002" true (List.mem "V002" codes)

let test_simulate_dual_determinism () =
  let rng = Prng.create 87 in
  let forest = Forest.random ~num_trees:6 ~max_depth:4 ~num_features:5 rng in
  let models =
    [
      {
        Simulate.name = "rand";
        forest;
        profiles = None;
        pool = random_rows rng 5 32;
        weight = 1;
        slo_us = None;
      };
    ]
  in
  let config =
    { Simulate.default_config with
      Simulate.num_requests = 300; mode = Runtime.Dual }
  in
  let virtual_half r =
    J.to_string ~indent:true (Simulate.report_to_json ~virtual_only:true r)
  in
  let rep1 = Simulate.run config models in
  let rep2 = Simulate.run config models in
  check_string "dual runs: virtual halves byte-identical" (virtual_half rep1)
    (virtual_half rep2);
  (* The virtual half must equal a pure virtual run's report everywhere
     except the config echo (which records the mode). *)
  let vrep = Simulate.run { config with Simulate.mode = Runtime.Virtual } models in
  let section r name =
    J.to_string (J.member name (Simulate.report_to_json ~virtual_only:true r))
  in
  List.iter
    (fun name ->
      check_string
        (Printf.sprintf "dual virtual %s == pure virtual %s" name name)
        (section vrep name) (section rep1 name))
    [ "metrics"; "queue"; "cache"; "compiles"; "per_model";
      "equivalence_failures" ];
  (* The full dual report additionally carries both clocks. *)
  let full = Simulate.report_to_json rep1 in
  check_bool "dual report has a wall section" true
    (match J.member "wall" (J.member "metrics" full) with
    | J.Obj _ -> true
    | _ -> false);
  (match J.member "drift" full with
  | J.List (_ :: _) -> ()
  | _ -> Alcotest.fail "dual report missing drift section");
  check_bool "virtual half omits wall" true
    (match
       J.member "wall"
         (J.member "metrics" (Simulate.report_to_json ~virtual_only:true rep1))
     with
    | exception J.Parse_error _ -> true
    | _ -> false)

let suite =
  [
    quick "histogram quantiles" test_histogram_quantiles;
    quick "histogram empty" test_histogram_empty;
    quick "rqueue backpressure" test_rqueue_backpressure;
    quick "rqueue mpsc accounting" test_rqueue_mpsc;
    quick "batcher size trigger" test_batcher_size_trigger;
    quick "batcher deadline trigger" test_batcher_deadline_trigger;
    quick "batcher flush" test_batcher_flush;
    quick "policy capacity bound" test_policy_capacity;
    quick "policy lru order" test_policy_lru_order;
    quick "policy sieve second chance" test_policy_sieve_second_chance;
    quick "policy sieve scan resistance" test_policy_sieve_scan_resistance;
    quick "registry cache + thread normalization"
      test_registry_cache_and_thread_normalization;
    quick "schedule clamp_threads boundary" test_clamp_threads_boundary;
    quick "S013 core oversubscription" test_s013_core_oversubscription;
    quick "warm-start profiler misses" test_warm_start_misses;
    quick "arrivals sorted + deterministic"
      test_arrivals_sorted_and_deterministic;
    quick "arrival kind parsing" test_arrival_kind_parse;
    quick "runtime accounting" test_runtime_accounting;
    quick "runtime backpressure" test_runtime_backpressure;
    quick "runtime deterministic" test_runtime_deterministic;
    qcheck ~count:25 ~name:"serve == direct JIT (bitwise)" serve_equiv_gen
      serve_equiv_property;
    quick "simulate deterministic report" test_simulate_deterministic_report;
    quick "serve-check drift math" test_serve_check_drift_math;
    quick "serve-check tolerances" test_serve_check_tolerances;
    quick "interleave clamp shares cache entry" test_interleave_clamp_cache_hit;
    quick "registry calibration rescales costs" test_registry_calibration;
    quick "calibration fitted from drift" test_calibration_of_drift;
    quick "dual mode wall sanity" test_runtime_dual_wall_sanity;
    quick "wall time monotone in batch size"
      test_runtime_wall_monotone_in_batch_size;
    quick "drift fault injection fires V001/V002"
      test_dual_drift_fault_injection;
    quick "dual mode virtual half deterministic"
      test_simulate_dual_determinism;
  ]
