(* Second-round coverage: formatting details, registry invariants,
   determinism, dead-path unreachability, multiclass training layout. *)

open Helpers
module Prng = Tb_util.Prng
module Json = Tb_util.Json
module Table = Tb_util.Table
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Shape = Tb_hir.Shape
module Lut = Tb_hir.Lut
module Itree = Tb_hir.Itree
module Tiling = Tb_hir.Tiling
module Tiled_tree = Tb_hir.Tiled_tree
module Padding = Tb_hir.Padding
module Reorder = Tb_hir.Reorder
module Schedule = Tb_hir.Schedule
module Lower = Tb_lir.Lower
module Jit = Tb_vm.Jit
module Profiler = Tb_vm.Profiler
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model

(* --- util --- *)

let test_json_integer_rendering () =
  check_string "integers compact" "3" (Json.to_string (Json.Num 3.0));
  check_string "negative" "-12" (Json.to_string (Json.Num (-12.0)));
  check_bool "fraction keeps precision" true
    (String.length (Json.to_string (Json.Num 0.1)) > 2)

let test_json_deep_nesting () =
  let rec nest n = if n = 0 then Json.Num 1.0 else Json.List [ nest (n - 1) ] in
  let j = nest 200 in
  check_bool "deep roundtrip" true (Json.of_string (Json.to_string j) = j)

let test_table_alignment () =
  let t = Table.create ~aligns:[ Table.Right; Table.Left ] [ "n"; "name" ] in
  Table.add_row t [ "1"; "x" ];
  let s = Table.render t in
  check_bool "renders" true (String.length s > 0)

let test_cell_formatting () =
  check_string "cell_f" "1.50" (Table.cell_f 1.5);
  check_string "cell_fx dec" "2.0x" (Table.cell_fx ~dec:1 2.0)

(* --- shapes / LUT --- *)

let test_shapes_distinct () =
  let shapes = Shape.enumerate ~max_size:5 in
  let n = List.length shapes in
  let uniq = List.sort_uniq compare shapes in
  check_int "no duplicates" n (List.length uniq)

let test_shape_depth () =
  let chain =
    Shape.Node (Some (Shape.Node (Some (Shape.Node (None, None)), None)), None)
  in
  check_int "chain depth" 3 (Shape.depth chain);
  check_int "singleton depth" 1 (Shape.depth (Shape.Node (None, None)))

let test_lut_memory_accounting () =
  let lut = Lut.create ~tile_size:3 in
  List.iter (fun s -> ignore (Lut.shape_id lut s)) (Shape.enumerate ~max_size:3);
  (* 1 + 2 + 5 = 8 shapes of size <= 3, 8 entries each, 2 bytes each *)
  check_int "bytes" (8 * 8 * 2) (Lut.memory_bytes lut)

let test_lut_table_snapshot_isolated () =
  let lut = Lut.create ~tile_size:2 in
  let s1 = Shape.Node (None, None) in
  ignore (Lut.shape_id lut s1);
  let snapshot = Lut.table lut in
  ignore (Lut.shape_id lut (Shape.Node (Some s1, None)));
  check_int "snapshot keeps old length" 1 (Array.length snapshot);
  check_int "registry grew" 2 (Lut.num_shapes lut)

(* --- reordering / padding --- *)

let test_reorder_deterministic () =
  let rng = Prng.create 1 in
  let mk () =
    let tree = Tree.random ~max_depth:6 rng in
    let it = Itree.of_tree tree in
    let lut = Lut.create ~tile_size:2 in
    Tiled_tree.create lut it (Tiling.basic it ~tile_size:2)
  in
  let trees = Array.init 15 (fun _ -> mk ()) in
  let a = Reorder.reorder trees and b = Reorder.reorder trees in
  check_bool "same grouping" true
    (List.for_all2
       (fun (g1 : Reorder.group) g2 -> g1.Reorder.positions = g2.Reorder.positions)
       a b)

let test_padding_dead_leaves_unreachable () =
  (* Pad a tree whose real leaves are all strictly positive; the dead
     padding leaves are 0.0 and must never be returned. *)
  let rng = Prng.create 2 in
  for _ = 1 to 20 do
    let tree =
      Tree.fold
        ~leaf:(fun v -> Tree.Leaf (Float.abs v +. 1.0))
        ~node:(fun f t l r -> Tree.Node { feature = f; threshold = t; left = l; right = r })
        (Tree.random ~max_depth:7 ~num_features:4 rng)
    in
    let it = Itree.of_tree tree in
    let lut = Lut.create ~tile_size:2 in
    let tiled = Tiled_tree.create lut it (Tiling.basic it ~tile_size:2) in
    let padded = Padding.pad_to_uniform_depth tiled in
    for _ = 1 to 50 do
      let row = random_row rng 4 in
      check_bool "dead leaf never reached" true (Tiled_tree.walk padded row >= 1.0)
    done
  done

let test_structure_key_isomorphism () =
  (* Same shapes, different thresholds -> same key; different topology ->
     different key. *)
  let build threshold =
    let tree =
      Tree.Node
        { feature = 0; threshold; left = Tree.Leaf 1.0; right = Tree.Leaf 2.0 }
    in
    let it = Itree.of_tree tree in
    let lut = Lut.create ~tile_size:2 in
    Tiled_tree.create lut it (Tiling.basic it ~tile_size:2)
  in
  check_string "isomorphic equal keys"
    (Tiled_tree.structure_key (build 0.25))
    (Tiled_tree.structure_key (build 0.75))

(* --- training --- *)

let test_multiclass_unbalanced_base_scores () =
  (* Heavily unbalanced class priors force per-class constant trees. *)
  let rng = Prng.create 3 in
  let n = 300 in
  let feats = Array.init n (fun _ -> [| Prng.uniform rng; Prng.uniform rng |]) in
  let labels =
    Array.init n (fun i -> if i mod 10 = 0 then 2.0 else if i mod 3 = 0 then 1.0 else 0.0)
  in
  let ds = Tb_data.Dataset.make ~name:"unbalanced" ~task:(Forest.Multiclass 3) feats labels in
  let params = { Tb_gbt.Train.default_params with num_rounds = 5; max_depth = 3 } in
  let f = Tb_gbt.Train.fit ~params ds in
  check_int "tree count multiple of classes" 0 (Array.length f.Forest.trees mod 3);
  (* The majority class must dominate on average margins. *)
  let counts = Array.make 3 0 in
  Array.iter
    (fun row ->
      let c = Forest.predict_class f row in
      counts.(c) <- counts.(c) + 1)
    feats;
  check_bool "majority class most predicted" true
    (counts.(0) >= counts.(1) && counts.(0) >= counts.(2))

let test_training_uses_subsample_determinism () =
  let ds = Tb_data.Generators.higgs ~rows:300 (Prng.create 4) in
  let params =
    { Tb_gbt.Train.default_params with num_rounds = 4; subsample = 0.5; seed = 9 }
  in
  let a = Tb_gbt.Train.fit ~params ds and b = Tb_gbt.Train.fit ~params ds in
  Array.iter2 (fun x y -> check_bool "deterministic subsampling" true (Tree.equal x y))
    a.Forest.trees b.Forest.trees;
  let c = Tb_gbt.Train.fit ~params:{ params with seed = 10 } ds in
  check_bool "seed changes model" false
    (Array.for_all2 Tree.equal a.Forest.trees c.Forest.trees)

(* --- profiler / loop order --- *)

let test_profiler_loop_orders_same_steps () =
  let rng = Prng.create 5 in
  let forest = Forest.random ~num_trees:12 ~max_depth:6 ~num_features:5 rng in
  let rows = random_rows rng 5 32 in
  let steps order =
    let lp = Lower.lower forest { Schedule.scalar_baseline with loop_order = order } in
    let w = Profiler.profile ~target:Config.intel_rocket_lake lp rows in
    w.Cost_model.steps_checked + w.Cost_model.steps_unchecked
  in
  check_int "loop order preserves work"
    (steps Schedule.One_tree_at_a_time)
    (steps Schedule.One_row_at_a_time)

let test_profiler_multiclass_walks_all_trees () =
  let rng = Prng.create 6 in
  let trees = Array.init 9 (fun _ -> Tree.random ~max_depth:4 ~num_features:4 rng) in
  let forest = Forest.make ~task:(Forest.Multiclass 3) ~num_features:4 trees in
  let lp = Lower.lower forest Schedule.default in
  let rows = random_rows rng 4 10 in
  let w = Profiler.profile ~target:Config.intel_rocket_lake lp rows in
  check_int "walks = trees x rows" (9 * 10)
    (w.Cost_model.walks_checked + w.Cost_model.walks_unrolled)

let test_code_bytes_grow_with_unrolled_groups () =
  let rng = Prng.create 7 in
  let forest = Forest.random ~num_trees:12 ~max_depth:7 ~num_features:5 rng in
  let rows = random_rows rng 5 8 in
  let code schedule =
    let lp = Lower.lower forest schedule in
    (Profiler.profile ~target:Config.intel_rocket_lake lp rows).Cost_model.code_bytes
  in
  check_bool "unrolled code bigger" true
    (code Schedule.default
    > code { Schedule.default with pad_and_unroll = false; peel = false })

(* --- baselines extras --- *)

let test_hummingbird_macs_manual_count () =
  (* One depth-2 tree: 3 internal nodes, 4 leaves -> N + N*L + L = 19. *)
  let tree =
    Tree.Node
      {
        feature = 0; threshold = 0.0;
        left = Tree.Node { feature = 1; threshold = 0.0; left = Tree.Leaf 1.0; right = Tree.Leaf 2.0 };
        right = Tree.Node { feature = 1; threshold = 1.0; left = Tree.Leaf 3.0; right = Tree.Leaf 4.0 };
      }
  in
  let forest = Forest.make ~task:Forest.Regression ~num_features:2 [| tree |] in
  let hb = Tb_baselines.Hummingbird.compile forest in
  check_bool "macs" true
    (Float.abs (Tb_baselines.Hummingbird.macs_per_row hb -. 19.0) < 1e-9)

let test_treelite_closure_constants () =
  (* Recompiling after mutating nothing: closures capture values, so a
     serialized-roundtrip forest compiles to identical behaviour. *)
  let rng = Prng.create 8 in
  let forest = Forest.random ~num_trees:5 ~num_features:4 rng in
  let forest' = Tb_model.Serialize.of_string (Tb_model.Serialize.to_string forest) in
  let rows = random_rows rng 4 16 in
  let a = Tb_baselines.Treelite.predict_batch (Tb_baselines.Treelite.compile forest) rows in
  let b = Tb_baselines.Treelite.predict_batch (Tb_baselines.Treelite.compile forest') rows in
  check_bool "identical" true
    (Array.for_all2 (fun x y -> Array.for_all2 Float.equal x y) a b)

(* --- end-to-end on a real (small) trained model --- *)

let test_end_to_end_trained_model () =
  let rng = Prng.create 9 in
  let ds = Tb_data.Generators.covtype ~rows:400 rng in
  let train, test = Tb_data.Dataset.split ds ~train_fraction:0.8 rng in
  let params =
    { Tb_gbt.Train.default_params with num_rounds = 25; max_depth = 6; min_child_weight = 0.1 }
  in
  let forest = Tb_gbt.Train.fit ~params train in
  let profiles =
    Tb_model.Model_stats.profile_forest forest train.Tb_data.Dataset.features
  in
  let rows = test.Tb_data.Dataset.features in
  let expected = Forest.predict_batch_raw forest rows in
  List.iter
    (fun schedule ->
      let compiled =
        Tb_core.Treebeard.make ~plan:(`Schedule schedule) ~profiles
          (`Forest forest)
      in
      let out = Tb_core.Treebeard.predict_forest compiled rows in
      check_bool
        ("trained model: " ^ Schedule.to_string schedule)
        true
        (Array.for_all2 arrays_close out expected))
    [
      Schedule.scalar_baseline;
      Schedule.default;
      { Schedule.default with tiling = Schedule.Probability_based };
      Schedule.with_threads Schedule.default 3;
    ]

let suite =
  [
    quick "json integer rendering" test_json_integer_rendering;
    quick "json deep nesting" test_json_deep_nesting;
    quick "table alignment option" test_table_alignment;
    quick "table cell formatting" test_cell_formatting;
    quick "shapes enumerate distinct" test_shapes_distinct;
    quick "shape depth" test_shape_depth;
    quick "lut memory accounting" test_lut_memory_accounting;
    quick "lut table snapshot isolated" test_lut_table_snapshot_isolated;
    quick "reorder deterministic" test_reorder_deterministic;
    quick "padding dead leaves unreachable" test_padding_dead_leaves_unreachable;
    quick "structure key isomorphism" test_structure_key_isomorphism;
    quick "multiclass unbalanced base scores" test_multiclass_unbalanced_base_scores;
    quick "training subsample determinism" test_training_uses_subsample_determinism;
    quick "profiler loop orders same steps" test_profiler_loop_orders_same_steps;
    quick "profiler multiclass walks all trees" test_profiler_multiclass_walks_all_trees;
    quick "code bytes grow with unrolling" test_code_bytes_grow_with_unrolled_groups;
    quick "hummingbird macs manual count" test_hummingbird_macs_manual_count;
    quick "treelite closure constants" test_treelite_closure_constants;
    quick "end-to-end trained model" test_end_to_end_trained_model;
  ]
