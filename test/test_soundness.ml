(* Soundness harness for the LIR walk-bounds analysis.

   The static analysis (Lir_check.analyze_program) claims, for every
   buffer a walk program touches, a hull of all indices the reporting
   pass can reach. The harness replays real executions against those
   claims: the Reg_ir interpreter is instrumented (Interp.compile ~trace)
   to log every concrete buffer access, and each logged index must lie
   inside the hull the analysis proved for that group's program — under
   both the legacy interval analysis and the relational
   congruence/stride one. A concrete access outside the hull would be an
   unsoundness in the abstract domains, the kind of bug the census
   numbers cannot see.

   The seeded-mutation tests are the negative half: falsify the facts the
   relational analysis relies on (corrupt a child pointer so the layout's
   tile-advance range no longer bounds the walk; splice a cross-lane
   statement into a jammed program) and assert the corresponding
   diagnostic (L011 / L013) actually fires. Together they show the
   discharge is evidence-based, not unconditional. *)

open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Reg_ir = Tb_lir.Reg_ir
module Reg_codegen = Tb_lir.Reg_codegen
module Interp = Tb_vm.Interp
module Lir_check = Tb_analysis.Lir_check
module Alias = Tb_analysis.Alias
module D = Tb_diag.Diagnostic

let grid = Array.of_list Schedule.table2_grid

let num_features = 6

let random_forest rng =
  Forest.random
    ~num_trees:(1 + Prng.int rng 10)
    ~max_depth:(2 + Prng.int rng 6)
    ~num_features rng

(* Every concrete access of every interpreted walk lies inside the hull
   the analysis proved for that group's program. *)
let soundness_property seed =
  let rng = Prng.create seed in
  let forest = random_forest rng in
  let schedule = grid.(Prng.int rng (Array.length grid)) in
  let rows = random_rows rng num_features (1 + Prng.int rng 20) in
  let lp = Lower.lower forest schedule in
  let env = Lir_check.env_of_layout ~num_features lp.Lower.layout in
  let hulls =
    List.map
      (fun (g, p) ->
        ( g,
          List.map
            (fun rel ->
              (rel, snd (Lir_check.analyze_program ~relational:rel env p)))
            [ true; false ] ))
      (Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir)
  in
  let violation = ref None in
  let trace ~group buffer idx =
    if !violation = None then
      List.iter
        (fun (rel, facts) ->
          match List.assoc_opt buffer facts with
          | Some { Lir_check.lo; hi }
            when float_of_int idx >= lo && float_of_int idx <= hi -> ()
          | Some { Lir_check.lo; hi } ->
            violation :=
              Some
                (Printf.sprintf
                   "group %d: %s access at %d outside proved hull [%g, %g] \
                    (relational=%b)"
                   group (Reg_ir.buffer_name buffer) idx lo hi rel)
          | None ->
            violation :=
              Some
                (Printf.sprintf
                   "group %d: %s access at %d but the analysis recorded no \
                    fact for that buffer (relational=%b)"
                   group (Reg_ir.buffer_name buffer) idx rel))
        (List.assoc group hulls)
  in
  ignore (Interp.compile ~trace lp rows);
  match !violation with
  | None -> true
  | Some msg ->
    QCheck2.Test.fail_reportf "unsound under %s: %s"
      (Schedule.to_string schedule) msg

(* Deterministic version over the full grid on one forest, so every
   Table II point (both layouts, every interleave factor, peel/unroll)
   is replayed at least once per run. *)
let test_full_grid_replay () =
  let rng = Prng.create 7 in
  let forest = Forest.random ~num_trees:7 ~max_depth:6 ~num_features rng in
  let rows = random_rows rng num_features 8 in
  List.iter
    (fun schedule ->
      let lp = Lower.lower forest schedule in
      let env = Lir_check.env_of_layout ~num_features lp.Lower.layout in
      let hulls =
        List.map
          (fun (g, p) ->
            (g, snd (Lir_check.analyze_program ~relational:true env p)))
          (Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir)
      in
      let trace ~group buffer idx =
        match List.assoc_opt buffer (List.assoc group hulls) with
        | Some { Lir_check.lo; hi }
          when float_of_int idx >= lo && float_of_int idx <= hi -> ()
        | Some { Lir_check.lo; hi } ->
          Alcotest.failf "%s: group %d %s at %d outside [%g, %g]"
            (Schedule.to_string schedule) group
            (Reg_ir.buffer_name buffer) idx lo hi
        | None ->
          Alcotest.failf "%s: group %d %s access with no recorded fact"
            (Schedule.to_string schedule) group (Reg_ir.buffer_name buffer)
      in
      ignore (Interp.compile ~trace lp rows))
    Schedule.table2_grid

(* ---------------- seeded mutations ---------------- *)

let sparse_schedule =
  {
    Schedule.default with
    Schedule.tile_size = 4;
    interleave = 1;
    pad_and_unroll = false;
    peel = false;
    layout = Schedule.Sparse_layout;
  }

let codes ds = List.map (fun d -> d.D.code) ds

(* The relational analysis discharges the sparse slot-indexed loads by
   pairing the cursor with the layout's measured child_ptr + lut-child
   advance range. Corrupting one child pointer past the slot extent must
   widen that range and bring the L011 back — the discharge depends on
   the measured facts, it is not unconditional. *)
let test_corrupted_child_ptr_revives_l011 () =
  let rng = Prng.create 11 in
  let forest = Forest.random ~num_trees:6 ~max_depth:5 ~num_features rng in
  let lp = Lower.lower forest sparse_schedule in
  let lay = lp.Lower.layout in
  let analyze () =
    let env = Lir_check.env_of_layout ~num_features lay in
    List.concat_map
      (fun (g, p) -> Lir_check.check_variant env ~variant:g p)
      (Reg_codegen.all_variants lay lp.Lower.mir)
  in
  let slot_warnings ds =
    List.length
      (List.filter
         (fun d -> d.D.code = "L011" || d.D.code = "L010")
         ds)
  in
  let intact = slot_warnings (analyze ()) in
  (* Pick a non-leaf slot and point it far past the slot arrays. *)
  let victim = ref (-1) in
  Array.iteri
    (fun i cp -> if !victim < 0 && cp >= 0 then victim := i)
    lay.Layout.child_ptr;
  Alcotest.(check bool) "forest has an internal sparse slot" true (!victim >= 0);
  let saved = lay.Layout.child_ptr.(!victim) in
  lay.Layout.child_ptr.(!victim) <- Array.length lay.Layout.shape_ids + 999;
  let mutated = slot_warnings (analyze ()) in
  lay.Layout.child_ptr.(!victim) <- saved;
  Alcotest.(check bool)
    (Printf.sprintf
       "corrupt child_ptr revives bounds warnings (%d intact -> %d mutated)"
       intact mutated)
    true
    (mutated > intact)

(* Splicing a statement that reads lane 1's registers into a jammed
   program must refute the lane partition: Alias.check and the full
   variant analysis both report L013, and the lanes-independent L014
   fact disappears. *)
let test_lane_collision_mutant_caught () =
  let rng = Prng.create 23 in
  let forest = Forest.random ~num_trees:8 ~max_depth:5 ~num_features rng in
  let schedule = { sparse_schedule with Schedule.interleave = 4 } in
  let lp = Lower.lower forest schedule in
  let lay = lp.Lower.layout in
  let env = Lir_check.env_of_layout ~num_features lay in
  let jammed =
    List.filter (fun (_, p) -> p.Reg_ir.lanes > 1)
      (Reg_codegen.jammed_variants lay lp.Lower.mir)
  in
  Alcotest.(check bool) "schedule produced jammed variants" true (jammed <> []);
  List.iter
    (fun (g, p) ->
      (* Intact: partition proved, L014 fact, no L013. *)
      let intact = Lir_check.check_variant env ~variant:g p in
      Alcotest.(check bool) "intact jam has no L013" false
        (List.mem "L013" (codes intact));
      Alcotest.(check bool) "intact jam proves lane independence (L014)" true
        (List.mem "L014" (codes intact));
      (* Mutant: lane 0 reads a lane-1 register. *)
      let w = Reg_ir.lane_width p in
      let mutant =
        { p with Reg_ir.body = p.Reg_ir.body @ [ Reg_ir.Iset (0, Reg_ir.Imov w) ] }
      in
      Alcotest.(check bool) "alias analysis refutes the mutant" true
        ((Alias.check mutant).Alias.diags <> []);
      let ds = Lir_check.check_variant env ~variant:g mutant in
      Alcotest.(check bool) "mutant reports L013" true
        (List.mem "L013" (codes ds));
      Alcotest.(check bool) "mutant loses the L014 fact" false
        (List.mem "L014" (codes ds)))
    jammed

let suite =
  [
    qcheck ~count:150
      ~name:"concrete accesses inside proved hulls (random grid point)"
      seed_gen soundness_property;
    quick "full Table II grid replay against relational hulls"
      test_full_grid_replay;
    quick "corrupt child_ptr revives discharged L011"
      test_corrupted_child_ptr_revives_l011;
    quick "jam lane-collision mutant caught as L013"
      test_lane_collision_mutant_caught;
  ]
