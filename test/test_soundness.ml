(* Soundness harness for the LIR walk-bounds analysis.

   The static analysis (Lir_check.analyze_program) claims, for every
   buffer a walk program touches, a hull of all indices the reporting
   pass can reach. The harness replays real executions against those
   claims: the Reg_ir interpreter is instrumented (Interp.compile ~trace)
   to log every concrete buffer access, and each logged index must lie
   inside the hull the analysis proved for that group's program — under
   both the legacy interval analysis and the relational
   congruence/stride one. A concrete access outside the hull would be an
   unsoundness in the abstract domains, the kind of bug the census
   numbers cannot see.

   The seeded-mutation tests are the negative half: falsify the facts the
   relational analysis relies on (corrupt a child pointer so the layout's
   tile-advance range no longer bounds the walk; splice a cross-lane
   statement into a jammed program) and assert the corresponding
   diagnostic (L011 / L013) actually fires. Together they show the
   discharge is evidence-based, not unconditional. *)

open Helpers
module Prng = Tb_util.Prng
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program
module Tiled_tree = Tb_hir.Tiled_tree
module Mir = Tb_mir.Mir
module Validate = Tb_analysis.Validate
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Reg_ir = Tb_lir.Reg_ir
module Reg_codegen = Tb_lir.Reg_codegen
module Interp = Tb_vm.Interp
module Lir_check = Tb_analysis.Lir_check
module Alias = Tb_analysis.Alias
module D = Tb_diag.Diagnostic

let grid = Array.of_list Schedule.table2_grid

let num_features = 6

let random_forest rng =
  Forest.random
    ~num_trees:(1 + Prng.int rng 10)
    ~max_depth:(2 + Prng.int rng 6)
    ~num_features rng

(* Every concrete access of every interpreted walk lies inside the hull
   the analysis proved for that group's program. *)
let soundness_property seed =
  let rng = Prng.create seed in
  let forest = random_forest rng in
  let schedule = grid.(Prng.int rng (Array.length grid)) in
  let rows = random_rows rng num_features (1 + Prng.int rng 20) in
  let lp = Lower.lower forest schedule in
  let env = Lir_check.env_of_layout ~num_features lp.Lower.layout in
  let hulls =
    List.map
      (fun (g, p) ->
        ( g,
          List.map
            (fun rel ->
              (rel, snd (Lir_check.analyze_program ~relational:rel env p)))
            [ true; false ] ))
      (Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir)
  in
  let violation = ref None in
  let trace ~group buffer idx =
    if !violation = None then
      List.iter
        (fun (rel, facts) ->
          match List.assoc_opt buffer facts with
          | Some { Lir_check.lo; hi }
            when float_of_int idx >= lo && float_of_int idx <= hi -> ()
          | Some { Lir_check.lo; hi } ->
            violation :=
              Some
                (Printf.sprintf
                   "group %d: %s access at %d outside proved hull [%g, %g] \
                    (relational=%b)"
                   group (Reg_ir.buffer_name buffer) idx lo hi rel)
          | None ->
            violation :=
              Some
                (Printf.sprintf
                   "group %d: %s access at %d but the analysis recorded no \
                    fact for that buffer (relational=%b)"
                   group (Reg_ir.buffer_name buffer) idx rel))
        (List.assoc group hulls)
  in
  ignore (Interp.compile ~trace lp rows);
  match !violation with
  | None -> true
  | Some msg ->
    QCheck2.Test.fail_reportf "unsound under %s: %s"
      (Schedule.to_string schedule) msg

(* Deterministic version over the full grid on one forest, so every
   Table II point (both layouts, every interleave factor, peel/unroll)
   is replayed at least once per run. *)
let test_full_grid_replay () =
  let rng = Prng.create 7 in
  let forest = Forest.random ~num_trees:7 ~max_depth:6 ~num_features rng in
  let rows = random_rows rng num_features 8 in
  List.iter
    (fun schedule ->
      let lp = Lower.lower forest schedule in
      let env = Lir_check.env_of_layout ~num_features lp.Lower.layout in
      let hulls =
        List.map
          (fun (g, p) ->
            (g, snd (Lir_check.analyze_program ~relational:true env p)))
          (Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir)
      in
      let trace ~group buffer idx =
        match List.assoc_opt buffer (List.assoc group hulls) with
        | Some { Lir_check.lo; hi }
          when float_of_int idx >= lo && float_of_int idx <= hi -> ()
        | Some { Lir_check.lo; hi } ->
          Alcotest.failf "%s: group %d %s at %d outside [%g, %g]"
            (Schedule.to_string schedule) group
            (Reg_ir.buffer_name buffer) idx lo hi
        | None ->
          Alcotest.failf "%s: group %d %s access with no recorded fact"
            (Schedule.to_string schedule) group (Reg_ir.buffer_name buffer)
      in
      ignore (Interp.compile ~trace lp rows))
    Schedule.table2_grid

(* ---------------- seeded mutations ---------------- *)

let sparse_schedule =
  {
    Schedule.default with
    Schedule.tile_size = 4;
    interleave = 1;
    pad_and_unroll = false;
    peel = false;
    layout = Schedule.Sparse_layout;
  }

let codes ds = List.map (fun d -> d.D.code) ds

(* The relational analysis discharges the sparse slot-indexed loads by
   pairing the cursor with the layout's measured child_ptr + lut-child
   advance range. Corrupting one child pointer past the slot extent must
   widen that range and bring the L011 back — the discharge depends on
   the measured facts, it is not unconditional. *)
let test_corrupted_child_ptr_revives_l011 () =
  let rng = Prng.create 11 in
  let forest = Forest.random ~num_trees:6 ~max_depth:5 ~num_features rng in
  let lp = Lower.lower forest sparse_schedule in
  let lay = lp.Lower.layout in
  let analyze () =
    let env = Lir_check.env_of_layout ~num_features lay in
    List.concat_map
      (fun (g, p) -> Lir_check.check_variant env ~variant:g p)
      (Reg_codegen.all_variants lay lp.Lower.mir)
  in
  let slot_warnings ds =
    List.length
      (List.filter
         (fun d -> d.D.code = "L011" || d.D.code = "L010")
         ds)
  in
  let intact = slot_warnings (analyze ()) in
  (* Pick a non-leaf slot and point it far past the slot arrays. *)
  let victim = ref (-1) in
  Array.iteri
    (fun i cp -> if !victim < 0 && cp >= 0 then victim := i)
    lay.Layout.child_ptr;
  Alcotest.(check bool) "forest has an internal sparse slot" true (!victim >= 0);
  let saved = lay.Layout.child_ptr.(!victim) in
  lay.Layout.child_ptr.(!victim) <- Array.length lay.Layout.shape_ids + 999;
  let mutated = slot_warnings (analyze ()) in
  lay.Layout.child_ptr.(!victim) <- saved;
  Alcotest.(check bool)
    (Printf.sprintf
       "corrupt child_ptr revives bounds warnings (%d intact -> %d mutated)"
       intact mutated)
    true
    (mutated > intact)

(* Splicing a statement that reads lane 1's registers into a jammed
   program must refute the lane partition: Alias.check and the full
   variant analysis both report L013, and the lanes-independent L014
   fact disappears. *)
let test_lane_collision_mutant_caught () =
  let rng = Prng.create 23 in
  let forest = Forest.random ~num_trees:8 ~max_depth:5 ~num_features rng in
  let schedule = { sparse_schedule with Schedule.interleave = 4 } in
  let lp = Lower.lower forest schedule in
  let lay = lp.Lower.layout in
  let env = Lir_check.env_of_layout ~num_features lay in
  let jammed =
    List.filter (fun (_, p) -> p.Reg_ir.lanes > 1)
      (Reg_codegen.jammed_variants lay lp.Lower.mir)
  in
  Alcotest.(check bool) "schedule produced jammed variants" true (jammed <> []);
  List.iter
    (fun (g, p) ->
      (* Intact: partition proved, L014 fact, no L013. *)
      let intact = Lir_check.check_variant env ~variant:g p in
      Alcotest.(check bool) "intact jam has no L013" false
        (List.mem "L013" (codes intact));
      Alcotest.(check bool) "intact jam proves lane independence (L014)" true
        (List.mem "L014" (codes intact));
      (* Mutant: lane 0 reads a lane-1 register. *)
      let w = Reg_ir.lane_width p in
      let mutant =
        { p with Reg_ir.body = p.Reg_ir.body @ [ Reg_ir.Iset (0, Reg_ir.Imov w) ] }
      in
      Alcotest.(check bool) "alias analysis refutes the mutant" true
        ((Alias.check mutant).Alias.diags <> []);
      let ds = Lir_check.check_variant env ~variant:g mutant in
      Alcotest.(check bool) "mutant reports L013" true
        (List.mem "L013" (codes ds));
      Alcotest.(check bool) "mutant loses the L014 fact" false
        (List.mem "L014" (codes ds)))
    jammed

(* ------------- seeded miscompiles vs the translation validator ------------- *)

(* The negative half of Tb_analysis.Validate: inject a concrete
   miscompile into one compiled form and require (a) the validator to
   reject it with a T004 finding carrying a witness row, and (b) the
   register-IR interpreter — an independent backend — to confirm the
   witness diverges from the source model's prediction. *)

let find_t004 fs = List.find_opt (fun f -> f.Validate.code = "T004") fs

(* The Reg_ir interpreter's verdict on one tree at one row. *)
let interp_tree (lp : Lower.t) tree row =
  let gi = ref (-1) in
  Array.iteri
    (fun g (plan : Mir.group_plan) ->
      if Array.exists (Int.equal tree) plan.Mir.group.Tb_hir.Reorder.positions
      then gi := g)
    lp.Lower.mir.Mir.group_plans;
  let prog =
    List.assoc !gi (Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir)
  in
  Interp.run_walk prog lp ~tree ~row

let confirm_with_interp what (lp : Lower.t) (f : Validate.finding) =
  let row =
    match f.Validate.witness with
    | Some w -> w
    | None -> Alcotest.failf "%s: T004 finding carries no witness row" what
  in
  let tree = f.Validate.tree in
  let src =
    lp.Lower.hir.Program.forest.Forest.trees.(
      lp.Lower.hir.Program.trees.(tree).Program.original_index)
  in
  let want = Tree.predict src row in
  match interp_tree lp tree row with
  | exception _ -> ()  (* the corrupt form crashes outright: divergent *)
  | got ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: Interp diverges from the source at the witness" what)
      true
      (Float.compare got want <> 0)

(* (a) Flipped routing: swap the first two children of a tree's root
   tile — every row that took the left route now takes the right. *)
let test_miscompile_flipped_route () =
  let rng = Prng.create 31 in
  let forest = Forest.random ~num_trees:6 ~max_depth:5 ~num_features rng in
  let hir = Program.build forest Schedule.default in
  let found = ref false in
  Array.iter
    (fun (e : Program.tree_entry) ->
      if not !found then
        match e.Program.tiled.Tiled_tree.nodes.(0) with
        | Tiled_tree.Tile tile
          when (not (Tiled_tree.is_dummy tile))
               && Array.length tile.Tiled_tree.children >= 2 ->
          let c = tile.Tiled_tree.children in
          let swap () =
            let t0 = c.(0) in
            c.(0) <- c.(1);
            c.(1) <- t0
          in
          swap ();
          (match find_t004 (Validate.check_hir hir) with
          | Some f ->
            found := true;
            (* Lower the mutated HIR; the interpreter executes the
               miscompiled route and must diverge at the witness. *)
            let mir = Mir.lower hir in
            let lay = Layout.build hir in
            confirm_with_interp "flipped route" (Lower.assemble hir mir lay) f
          | None -> swap () (* twin subtrees; undo and try the next tree *))
        | _ -> ())
    hir.Program.trees;
  Alcotest.(check bool) "a flipped-route mutant was caught with T004" true
    !found

(* (b) Off-by-one child pointer in the sparse layout. *)
let test_miscompile_offby1_child_ptr () =
  let rng = Prng.create 37 in
  let forest = Forest.random ~num_trees:8 ~max_depth:6 ~num_features rng in
  let hir = Program.build forest sparse_schedule in
  let mir = Mir.lower hir in
  let lay = Layout.build hir in
  let found = ref false in
  Array.iteri
    (fun s cp ->
      if (not !found) && cp >= 0 then begin
        let cp' = Array.copy lay.Layout.child_ptr in
        cp'.(s) <- cp'.(s) + 1;
        let mutant = { lay with Layout.child_ptr = cp' } in
        match find_t004 (Validate.check_lir hir mir mutant) with
        | Some f ->
          found := true;
          confirm_with_interp "off-by-one child_ptr"
            (Lower.assemble hir mir mutant) f
        | None -> ()
      end)
    lay.Layout.child_ptr;
  Alcotest.(check bool) "an off-by-one child_ptr mutant was caught with T004"
    true !found

(* (c) Swapped LUT entries: two distinct exits of one child table trade
   places. Swaps between bit patterns no input can produce (padding
   lanes) are semantically neutral and must NOT fire — the loop skips
   them until a reachable pair is hit. *)
let test_miscompile_swapped_lut_entries () =
  let rng = Prng.create 41 in
  let forest = Forest.random ~num_trees:4 ~max_depth:5 ~num_features rng in
  let hir = Program.build forest Schedule.default in
  let mir = Mir.lower hir in
  let lay = Layout.build hir in
  let found = ref false in
  let attempts = ref 0 in
  Array.iteri
    (fun sid row ->
      for i = 0 to Array.length row - 1 do
        for j = i + 1 to Array.length row - 1 do
          if (not !found) && !attempts < 200 && row.(i) <> row.(j) then begin
            incr attempts;
            let lut' = Array.map Array.copy lay.Layout.lut in
            let r = lut'.(sid) in
            let t = r.(i) in
            r.(i) <- r.(j);
            r.(j) <- t;
            let mutant = { lay with Layout.lut = lut' } in
            match find_t004 (Validate.check_lir hir mir mutant) with
            | Some f ->
              found := true;
              confirm_with_interp "swapped LUT entries"
                (Lower.assemble hir mir mutant) f
            | None -> ()
          end
        done
      done)
    lay.Layout.lut;
  Alcotest.(check bool) "a swapped-LUT-entry mutant was caught with T004" true
    !found

(* (d) Wrong leaf constant in the sparse dense leaf store. *)
let test_miscompile_wrong_leaf_constant () =
  let rng = Prng.create 43 in
  let forest = Forest.random ~num_trees:6 ~max_depth:5 ~num_features rng in
  let hir = Program.build forest sparse_schedule in
  let mir = Mir.lower hir in
  let lay = Layout.build hir in
  let found = ref false in
  Array.iteri
    (fun idx v ->
      if not !found then begin
        let lv = Array.copy lay.Layout.leaf_values in
        lv.(idx) <- v +. 1.0;
        let mutant = { lay with Layout.leaf_values = lv } in
        match find_t004 (Validate.check_lir hir mir mutant) with
        | Some f ->
          found := true;
          confirm_with_interp "wrong leaf constant"
            (Lower.assemble hir mir mutant) f
        | None -> ()
      end)
    lay.Layout.leaf_values;
  Alcotest.(check bool) "a wrong-leaf-constant mutant was caught with T004" true
    !found

let suite =
  [
    qcheck ~count:150
      ~name:"concrete accesses inside proved hulls (random grid point)"
      seed_gen soundness_property;
    quick "full Table II grid replay against relational hulls"
      test_full_grid_replay;
    quick "corrupt child_ptr revives discharged L011"
      test_corrupted_child_ptr_revives_l011;
    quick "jam lane-collision mutant caught as L013"
      test_lane_collision_mutant_caught;
    quick "miscompile: flipped route -> T004 + Interp-confirmed witness"
      test_miscompile_flipped_route;
    quick "miscompile: off-by-one child_ptr -> T004 + Interp-confirmed witness"
      test_miscompile_offby1_child_ptr;
    quick "miscompile: swapped LUT entries -> T004 + Interp-confirmed witness"
      test_miscompile_swapped_lut_entries;
    quick "miscompile: wrong leaf constant -> T004 + Interp-confirmed witness"
      test_miscompile_wrong_leaf_constant;
  ]
