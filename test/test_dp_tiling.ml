(* DP tiling extensions: optimal probability-based tiling (the paper's
   "can be solved optimally using dynamic programming") and the
   min-max-depth variant (suggested as future work in §III-B2). *)

open Helpers
module Prng = Tb_util.Prng
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Itree = Tb_hir.Itree
module Tiling = Tb_hir.Tiling
module Lut = Tb_hir.Lut
module Tiled_tree = Tb_hir.Tiled_tree
module Schedule = Tb_hir.Schedule

let random_leaf_probs rng n =
  let raw = Array.init n (fun _ -> Tb_util.Prng.uniform rng ** 3.0) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun x -> x /. total) raw

(* Exact expected tiled depth under leaf probabilities: tiled leaves in
   left-to-right order correspond to source leaves (no padding here). *)
let expected_depth tiled leaf_probs =
  let depths = List.rev (Tiled_tree.leaf_depths tiled) in
  List.fold_left2
    (fun acc (d, _) p -> acc +. (float_of_int d *. p))
    0.0 depths (Array.to_list leaf_probs)

let setup seed =
  let rng = Prng.create seed in
  let tree = Tree.random ~max_depth:8 ~num_features:6 rng in
  let it = Itree.of_tree tree in
  let leaf_probs = random_leaf_probs rng (Tree.num_leaves tree) in
  let node_probs = Itree.node_probs it ~leaf_probs in
  let tile_size = 2 + Prng.int rng 5 in
  (rng, tree, it, leaf_probs, node_probs, tile_size)

let dp_valid_property which seed =
  let _, _, it, _, node_probs, tile_size = setup seed in
  let tiling =
    match which with
    | `Optimal -> Tiling.optimal_probability_based it ~node_probs ~tile_size
    | `Minmax -> Tiling.min_max_depth it ~tile_size
  in
  match Tiling.check_valid it tiling with
  | Ok () -> true
  | Error msg -> QCheck2.Test.fail_reportf "invalid DP tiling: %s" msg

let dp_walk_equivalence_property which seed =
  let rng, tree, it, _, node_probs, tile_size = setup seed in
  let lut = Lut.create ~tile_size in
  let tiling =
    match which with
    | `Optimal -> Tiling.optimal_probability_based it ~node_probs ~tile_size
    | `Minmax -> Tiling.min_max_depth it ~tile_size
  in
  let tiled = Tiled_tree.create lut it tiling in
  Array.for_all
    (fun row -> floats_close (Tree.predict tree row) (Tiled_tree.walk tiled row))
    (random_rows rng 6 48)
  || QCheck2.Test.fail_report "DP-tiled walk diverges"

let optimality_property seed =
  (* The DP must dominate both greedy algorithms on the exact §III-C
     objective, for every tree and probability vector. *)
  let _, _, it, leaf_probs, node_probs, tile_size = setup seed in
  let lut = Lut.create ~tile_size in
  let depth_of tiling = expected_depth (Tiled_tree.create lut it tiling) leaf_probs in
  let opt = depth_of (Tiling.optimal_probability_based it ~node_probs ~tile_size) in
  let greedy = depth_of (Tiling.probability_based it ~node_probs ~tile_size) in
  let basic = depth_of (Tiling.basic it ~tile_size) in
  (opt <= greedy +. 1e-9 && opt <= basic +. 1e-9)
  || QCheck2.Test.fail_reportf "DP not optimal: opt=%.4f greedy=%.4f basic=%.4f"
       opt greedy basic

let minmax_depth_property seed =
  (* Min-max tiling's worst-case tiled depth is no worse than either
     default algorithm's. *)
  let _, _, it, _, node_probs, tile_size = setup seed in
  let lut = Lut.create ~tile_size in
  let max_depth tiling = Tiled_tree.depth (Tiled_tree.create lut it tiling) in
  let mm = max_depth (Tiling.min_max_depth it ~tile_size) in
  let basic = max_depth (Tiling.basic it ~tile_size) in
  let greedy = max_depth (Tiling.probability_based it ~node_probs ~tile_size) in
  (mm <= basic && mm <= greedy)
  || QCheck2.Test.fail_reportf "minmax not minimal: mm=%d basic=%d greedy=%d" mm
       basic greedy

let test_optimal_beats_greedy_on_chain () =
  (* A hot path along a right chain with a distracting heavy node elsewhere:
     the greedy can be led astray; the DP cannot. Regardless of the greedy's
     outcome, the DP must reach the optimum: hot leaf at tiled depth 1. *)
  let tree =
    (* root -> right chain of 3, each with a left leaf. *)
    Tree.Node
      {
        feature = 0; threshold = 0.0;
        left = Tree.Leaf 1.0;
        right =
          Tree.Node
            {
              feature = 1; threshold = 0.0;
              left = Tree.Leaf 2.0;
              right =
                Tree.Node
                  { feature = 2; threshold = 0.0; left = Tree.Leaf 3.0; right = Tree.Leaf 4.0 };
            };
      }
  in
  let it = Itree.of_tree tree in
  (* leaves l-to-r: 1.0, 2.0, 3.0, 4.0; all mass on the deepest leaf. *)
  let node_probs = Itree.node_probs it ~leaf_probs:[| 0.0; 0.0; 0.0; 1.0 |] in
  let tile_size = 3 in
  let lut = Lut.create ~tile_size in
  let tiled =
    Tiled_tree.create lut it (Tiling.optimal_probability_based it ~node_probs ~tile_size)
  in
  check_float "hot mass at depth 1" 1.0
    (expected_depth tiled [| 0.0; 0.0; 0.0; 1.0 |])

let test_minmax_balances_chain () =
  (* A 6-node chain at tile size 2: greedy-by-level tiling yields depth 3;
     the min-max DP must also reach the optimal 3 and never exceed it. *)
  let rec chain n =
    if n = 0 then Tree.Leaf 0.0
    else
      Tree.Node
        { feature = 0; threshold = float_of_int n; left = Tree.Leaf 1.0; right = chain (n - 1) }
  in
  let it = Itree.of_tree (chain 6) in
  let tiling = Tiling.min_max_depth it ~tile_size:2 in
  let lut = Lut.create ~tile_size:2 in
  check_int "optimal max depth" 3 (Tiled_tree.depth (Tiled_tree.create lut it tiling))

let test_dp_through_full_pipeline () =
  (* End-to-end: both DP tilings compile and predict exactly. *)
  let rng = Prng.create 42 in
  let forest = Forest.random ~num_trees:8 ~max_depth:7 ~num_features:5 rng in
  let rows = random_rows rng 5 32 in
  let profiles = Tb_model.Model_stats.profile_forest forest rows in
  let expected = Forest.predict_batch_raw forest rows in
  List.iter
    (fun tiling ->
      let schedule = { Schedule.default with tiling } in
      let compiled =
        Tb_core.Treebeard.make ~plan:(`Schedule schedule) ~profiles
          (`Forest forest)
      in
      let out = Tb_core.Treebeard.predict_forest compiled rows in
      check_bool (Schedule.to_string schedule) true
        (Array.for_all2 arrays_close out expected))
    [ Schedule.Optimal_probability_based; Schedule.Min_max_depth ]

let suite =
  [
    qcheck ~count:60 ~name:"optimal DP tiling is valid" seed_gen
      (dp_valid_property `Optimal);
    qcheck ~count:60 ~name:"minmax DP tiling is valid" seed_gen
      (dp_valid_property `Minmax);
    qcheck ~count:60 ~name:"optimal DP walk == binary walk" seed_gen
      (dp_walk_equivalence_property `Optimal);
    qcheck ~count:60 ~name:"minmax DP walk == binary walk" seed_gen
      (dp_walk_equivalence_property `Minmax);
    qcheck ~count:60 ~name:"DP dominates both greedy tilings" seed_gen
      optimality_property;
    qcheck ~count:60 ~name:"minmax minimizes worst-case depth" seed_gen
      minmax_depth_property;
    quick "optimal keeps hot chain shallow" test_optimal_beats_greedy_on_chain;
    quick "minmax balances a chain" test_minmax_balances_chain;
    quick "DP tilings through full pipeline" test_dp_through_full_pipeline;
  ]
