open Helpers
module Prng = Tb_util.Prng
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Serialize = Tb_model.Serialize
module Model_stats = Tb_model.Model_stats

let leaf v = Tree.Leaf v

let node f t l r = Tree.Node { feature = f; threshold = t; left = l; right = r }

let small_tree = node 0 0.5 (leaf 1.0) (node 1 (-0.25) (leaf 2.0) (leaf 3.0))

let test_predict_paths () =
  check_float "left" 1.0 (Tree.predict small_tree [| 0.0; 0.0 |]);
  check_float "right-left" 2.0 (Tree.predict small_tree [| 1.0; -1.0 |]);
  check_float "right-right" 3.0 (Tree.predict small_tree [| 1.0; 0.0 |])

let test_predict_boundary_goes_right () =
  (* The node predicate is strict <: equality goes right. *)
  check_float "boundary" 2.0 (Tree.predict small_tree [| 0.5; -1.0 |])

let test_leaf_index () =
  check_int "left" 0 (Tree.predict_leaf_index small_tree [| 0.0; 0.0 |]);
  check_int "mid" 1 (Tree.predict_leaf_index small_tree [| 1.0; -1.0 |]);
  check_int "right" 2 (Tree.predict_leaf_index small_tree [| 1.0; 0.0 |])

let test_tree_counts () =
  check_int "depth" 2 (Tree.depth small_tree);
  check_int "nodes" 2 (Tree.num_nodes small_tree);
  check_int "leaves" 3 (Tree.num_leaves small_tree);
  Alcotest.(check (array (float 0.0))) "leaves in order" [| 1.0; 2.0; 3.0 |]
    (Tree.leaves small_tree);
  Alcotest.(check (array int)) "leaf depths" [| 1; 2; 2 |] (Tree.leaf_depths small_tree)

let test_structure_key () =
  let t1 = node 0 0.1 (leaf 1.0) (leaf 2.0) in
  let t2 = node 3 9.9 (leaf 7.0) (leaf 8.0) in
  check_string "same structure" (Tree.structure_key t1) (Tree.structure_key t2);
  check_bool "different structure" false
    (String.equal (Tree.structure_key t1) (Tree.structure_key small_tree))

let test_max_feature () =
  check_int "max feature" 1 (Tree.max_feature small_tree);
  check_int "lone leaf" (-1) (Tree.max_feature (leaf 0.0))

let test_random_tree_depth_bound () =
  let rng = Prng.create 1 in
  for _ = 1 to 50 do
    let t = Tree.random ~max_depth:5 rng in
    check_bool "depth bounded" true (Tree.depth t <= 5)
  done

let test_leaf_index_counts_all_leaves () =
  let rng = Prng.create 2 in
  for _ = 1 to 30 do
    let t = Tree.random ~max_depth:6 ~num_features:4 rng in
    let row = random_row rng 4 in
    let idx = Tree.predict_leaf_index t row in
    check_float "index consistent with value" (Tree.predict t row) (Tree.leaves t).(idx)
  done

(* Forest *)

let test_forest_rejects_bad_features () =
  check_bool "raises" true
    (match Forest.make ~task:Forest.Regression ~num_features:1 [| small_tree |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_forest_rejects_bad_multiclass () =
  let trees = Array.make 5 (leaf 0.0) in
  check_bool "raises" true
    (match Forest.make ~task:(Forest.Multiclass 3) ~num_features:1 trees with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_forest_predict_sums () =
  let f =
    Forest.make ~base_score:10.0 ~task:Forest.Regression ~num_features:2
      [| small_tree; small_tree |]
  in
  check_float "sum" (10.0 +. 2.0) (Forest.predict_single f [| 0.0; 0.0 |])

let test_forest_multiclass_routing () =
  let t v = leaf v in
  let f =
    Forest.make ~task:(Forest.Multiclass 2) ~num_features:1
      [| t 1.0; t 10.0; t 2.0; t 20.0 |]
  in
  let out = Forest.predict_raw f [| 0.0 |] in
  check_float "class 0" 3.0 out.(0);
  check_float "class 1" 30.0 out.(1);
  check_int "argmax class" 1 (Forest.predict_class f [| 0.0 |])

let test_forest_binary_class () =
  let f = Forest.make ~task:Forest.Binary_logistic ~num_features:1 [| leaf 0.3 |] in
  check_int "positive" 1 (Forest.predict_class f [| 0.0 |]);
  let g = Forest.make ~task:Forest.Binary_logistic ~num_features:1 [| leaf (-0.3) |] in
  check_int "negative" 0 (Forest.predict_class g [| 0.0 |])

let test_forest_batch () =
  let f = Forest.make ~task:Forest.Regression ~num_features:2 [| small_tree |] in
  let rows = [| [| 0.0; 0.0 |]; [| 1.0; 0.0 |] |] in
  let out = Forest.predict_batch_raw f rows in
  check_float "row 0" 1.0 out.(0).(0);
  check_float "row 1" 3.0 out.(1).(0)

(* Serialization *)

let test_serialize_roundtrip_tree () =
  let rng = Prng.create 3 in
  for _ = 1 to 30 do
    let t = Tree.random ~max_depth:7 rng in
    let t' = Serialize.tree_of_json (Serialize.tree_to_json t) in
    check_bool "tree roundtrip" true (Tree.equal t t')
  done

let roundtrip_forest f =
  let f' = Serialize.of_string (Serialize.to_string f) in
  check_string "name" f.Forest.name f'.Forest.name;
  check_int "features" f.Forest.num_features f'.Forest.num_features;
  check_float "base" f.Forest.base_score f'.Forest.base_score;
  check_bool "task" true (f.Forest.task = f'.Forest.task);
  check_int "trees" (Array.length f.Forest.trees) (Array.length f'.Forest.trees);
  Array.iter2
    (fun a b -> check_bool "tree equal" true (Tree.equal a b))
    f.Forest.trees f'.Forest.trees

let test_serialize_roundtrip_forest () =
  let rng = Prng.create 4 in
  roundtrip_forest (Forest.random ~num_trees:8 rng)

let test_serialize_roundtrip_multiclass () =
  let rng = Prng.create 5 in
  let trees = Array.init 6 (fun _ -> Tree.random ~max_depth:4 ~num_features:3 rng) in
  roundtrip_forest
    (Forest.make ~name:"mc" ~base_score:0.5 ~task:(Forest.Multiclass 3) ~num_features:3 trees)

let test_serialize_preserves_predictions () =
  let rng = Prng.create 6 in
  let f = Forest.random ~num_trees:10 ~num_features:5 rng in
  let f' = Serialize.of_string (Serialize.to_string f) in
  let rows = random_rows rng 5 50 in
  Array.iter
    (fun row ->
      check_float "prediction preserved" (Forest.predict_single f row)
        (Forest.predict_single f' row))
    rows

let test_serialize_file_roundtrip () =
  let rng = Prng.create 7 in
  let f = Forest.random ~num_trees:3 rng in
  let path = Filename.temp_file "tb_model" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.to_file path f;
      roundtrip_forest f;
      let f' = Serialize.of_file path in
      check_int "trees" 3 (Array.length f'.Forest.trees))

(* Serialization must preserve thresholds and leaf values to the bit:
   the quantization certifier proves bounds about the exact IEEE-754
   constants of the model, so a printer that drops low mantissa bits
   would silently invalidate every certificate of a reloaded model.
   Adversarial constants come straight from random 64-bit patterns
   (full 53-bit mantissas, denormals, extreme exponents), not from
   "round" values a lossy printer would survive. *)
let bits_preserving_roundtrip seed =
  let rng = Prng.create seed in
  let adversarial_float () =
    let rec go () =
      let f = Int64.float_of_bits (Prng.next_int64 rng) in
      if Float.is_finite f then f else go ()
    in
    go ()
  in
  let rec build depth =
    if depth = 0 || Prng.int rng 3 = 0 then leaf (adversarial_float ())
    else
      node (Prng.int rng 3)
        (adversarial_float ())
        (build (depth - 1))
        (build (depth - 1))
  in
  let forest =
    Forest.make ~name:"bits"
      ~base_score:(adversarial_float ())
      ~task:Forest.Regression ~num_features:3
      (Array.init (1 + Prng.int rng 4) (fun _ -> build 4))
  in
  let forest' = Serialize.of_string (Serialize.to_string forest) in
  let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let rec same_tree a b =
    match (a, b) with
    | Tree.Leaf x, Tree.Leaf y -> same_bits x y
    | ( Tree.Node { feature = f; threshold = t; left = l; right = r },
        Tree.Node { feature = f'; threshold = t'; left = l'; right = r' } ) ->
      f = f' && same_bits t t' && same_tree l l' && same_tree r r'
    | _ -> false
  in
  if not (same_bits forest.Forest.base_score forest'.Forest.base_score) then
    QCheck2.Test.fail_reportf "base_score drifted: %h -> %h"
      forest.Forest.base_score forest'.Forest.base_score;
  Array.iteri
    (fun i t ->
      if not (same_tree t forest'.Forest.trees.(i)) then
        QCheck2.Test.fail_reportf
          "tree %d: some threshold or leaf changed bit pattern across \
           serialization"
          i)
    forest.Forest.trees;
  true

let test_serialize_rejects_garbage () =
  check_bool "raises" true
    (match Serialize.of_string "{\"nope\": 1}" with
    | exception Tb_util.Json.Parse_error _ -> true
    | _ -> false)

(* Model statistics *)

let test_profile_counts_hits () =
  let rows = [| [| 0.0; 0.0 |]; [| 1.0; -1.0 |]; [| 1.0; 0.0 |]; [| 1.0; 0.0 |] |] in
  let p = Model_stats.profile_tree small_tree rows in
  Alcotest.(check (array int)) "hits" [| 1; 1; 2 |] p.Model_stats.hits;
  check_float "prob" 0.5 p.Model_stats.leaf_probs.(2)

let test_profile_empty_rows_uniform () =
  let p = Model_stats.profile_tree small_tree [||] in
  Array.iter (fun q -> check_float "uniform" (1.0 /. 3.0) q) p.Model_stats.leaf_probs

let test_coverage_leaves () =
  let p = { Model_stats.leaf_probs = [| 0.7; 0.2; 0.05; 0.05 |]; hits = [||] } in
  check_int "cover 0.6" 1 (Model_stats.coverage_leaves p 0.6);
  check_int "cover 0.9" 2 (Model_stats.coverage_leaves p 0.9);
  check_int "cover 1.0" 4 (Model_stats.coverage_leaves p 1.0)

let test_is_leaf_biased () =
  let concentrated = { Model_stats.leaf_probs = Array.append [| 0.95 |] (Array.make 19 (0.05 /. 19.)); hits = [||] } in
  check_bool "biased" true
    (Model_stats.is_leaf_biased concentrated ~alpha:0.075 ~beta:0.9);
  let uniform = { Model_stats.leaf_probs = Array.make 20 0.05; hits = [||] } in
  check_bool "not biased" false
    (Model_stats.is_leaf_biased uniform ~alpha:0.075 ~beta:0.9)

let test_coverage_cdf_monotone () =
  let rng = Prng.create 8 in
  let f = Forest.random ~num_trees:10 ~num_features:4 rng in
  let rows = random_rows rng 4 200 in
  let cdf = Model_stats.coverage_cdf f rows ~f:0.9 in
  check_int "one point per tree" 10 (Array.length cdf);
  let last = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      check_bool "x sorted" true (x >= !last);
      last := x;
      check_bool "y in range" true (y > 0.0 && y <= 1.0))
    cdf;
  check_float "cdf ends at 1" 1.0 (snd cdf.(9))

let test_expected_leaf_depth () =
  let p = { Model_stats.leaf_probs = [| 0.5; 0.25; 0.25 |]; hits = [||] } in
  (* depths: 1, 2, 2 *)
  check_float "expected depth" 1.5 (Model_stats.expected_leaf_depth small_tree p)

let suite =
  [
    quick "predict paths" test_predict_paths;
    quick "boundary equality goes right" test_predict_boundary_goes_right;
    quick "leaf index" test_leaf_index;
    quick "tree counts" test_tree_counts;
    quick "structure key" test_structure_key;
    quick "max feature" test_max_feature;
    quick "random tree depth bound" test_random_tree_depth_bound;
    quick "leaf index consistent with predict" test_leaf_index_counts_all_leaves;
    quick "forest rejects bad features" test_forest_rejects_bad_features;
    quick "forest rejects bad multiclass" test_forest_rejects_bad_multiclass;
    quick "forest predict sums" test_forest_predict_sums;
    quick "multiclass routing" test_forest_multiclass_routing;
    quick "binary class decision" test_forest_binary_class;
    quick "batch prediction" test_forest_batch;
    quick "serialize tree roundtrip" test_serialize_roundtrip_tree;
    quick "serialize forest roundtrip" test_serialize_roundtrip_forest;
    quick "serialize multiclass roundtrip" test_serialize_roundtrip_multiclass;
    quick "serialize preserves predictions" test_serialize_preserves_predictions;
    quick "serialize file roundtrip" test_serialize_file_roundtrip;
    qcheck ~count:100
      ~name:"serialize preserves IEEE-754 bit patterns exactly" seed_gen
      bits_preserving_roundtrip;
    quick "serialize rejects garbage" test_serialize_rejects_garbage;
    quick "profile counts hits" test_profile_counts_hits;
    quick "profile of empty rows is uniform" test_profile_empty_rows_uniform;
    quick "coverage leaves" test_coverage_leaves;
    quick "leaf bias classification" test_is_leaf_biased;
    quick "coverage cdf monotone" test_coverage_cdf_monotone;
    quick "expected leaf depth" test_expected_leaf_depth;
  ]
