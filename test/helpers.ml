(* Shared test utilities. *)

module Prng = Tb_util.Prng

let quick name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) ~name gen law =
  (* Fixed seed: the suite must be reproducible run to run. *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed |])
    (QCheck2.Test.make ~count ~name gen law)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let random_row rng num_features =
  Array.init num_features (fun _ -> Prng.float rng 2.0 -. 1.0)

let random_rows rng num_features n =
  Array.init n (fun _ -> random_row rng num_features)

let floats_close ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps +. (eps *. Float.abs b)

let arrays_close ?eps a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> floats_close ?eps x y) a b

(* QCheck2 generator for a (seed) from which tests derive deterministic
   structures via our own PRNG; shrinking over seeds is meaningless but
   cheap. *)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000
