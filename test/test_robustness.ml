(* Edge cases, failure injection and cross-backend consistency properties
   that don't fit the per-module suites. *)

open Helpers
module Prng = Tb_util.Prng
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Jit = Tb_vm.Jit
module Profiler = Tb_vm.Profiler
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model
module Cache = Tb_cpu.Cache

let schedules_under_test =
  [
    Schedule.scalar_baseline;
    Schedule.default;
    { Schedule.default with layout = Schedule.Array_layout };
    { Schedule.default with loop_order = Schedule.One_row_at_a_time };
    { Schedule.default with tile_size = 3; interleave = 2; pad_and_unroll = false };
  ]

(* Padding inserts dummy tiles whose predicate is [x < +inf]; like the
   paper's padding, that assumes finite feature values (IEEE makes the
   predicate false for NaN and +inf, diverting the walk). Non-finite
   inputs are therefore only guaranteed consistent on unpadded
   schedules. *)
let schedules_without_padding =
  List.map
    (fun s -> { s with Schedule.pad_and_unroll = false })
    schedules_under_test

(* NaN / infinity semantics: the node predicate is [x < threshold]; IEEE
   makes that false for NaN, so NaN rows must deterministically take right
   branches in EVERY backend, scalar or vectorized. *)
let test_nan_rows_consistent () =
  let rng = Prng.create 1 in
  let forest = Forest.random ~num_trees:8 ~max_depth:6 ~num_features:4 rng in
  let rows =
    [|
      [| Float.nan; 0.0; 0.0; 0.0 |];
      [| Float.nan; Float.nan; Float.nan; Float.nan |];
      [| 0.1; Float.nan; -0.4; 0.2 |];
    |]
  in
  let expected = Forest.predict_batch_raw forest rows in
  List.iter
    (fun schedule ->
      let out = Jit.compile (Lower.lower forest schedule) rows in
      check_bool
        ("nan consistent: " ^ Schedule.to_string schedule)
        true
        (Array.for_all2 arrays_close out expected))
    schedules_without_padding

let test_infinite_features_consistent () =
  let rng = Prng.create 2 in
  let forest = Forest.random ~num_trees:8 ~max_depth:6 ~num_features:4 rng in
  let rows =
    [|
      [| Float.infinity; 0.0; Float.neg_infinity; 0.0 |];
      [| Float.neg_infinity; Float.neg_infinity; 0.0; Float.infinity |];
    |]
  in
  let expected = Forest.predict_batch_raw forest rows in
  List.iter
    (fun schedule ->
      let out = Jit.compile (Lower.lower forest schedule) rows in
      check_bool "inf consistent" true (Array.for_all2 arrays_close out expected))
    schedules_without_padding

(* The two loop orders accumulate tree contributions for a given row in the
   same (reordered) tree sequence, so they must agree bit-for-bit, not just
   within tolerance. *)
let test_loop_orders_bitwise_equal () =
  let rng = Prng.create 3 in
  let forest = Forest.random ~num_trees:15 ~max_depth:7 ~num_features:6 rng in
  let rows = random_rows rng 6 64 in
  let out_of order =
    Jit.compile (Lower.lower forest { Schedule.default with loop_order = order }) rows
  in
  let a = out_of Schedule.One_tree_at_a_time in
  let b = out_of Schedule.One_row_at_a_time in
  check_bool "bitwise equal" true
    (Array.for_all2 (fun x y -> Array.for_all2 Float.equal x y) a b)

let test_interleave_bitwise_equal () =
  let rng = Prng.create 4 in
  let forest = Forest.random ~num_trees:15 ~max_depth:7 ~num_features:6 rng in
  let rows = random_rows rng 6 67 in
  let out_of il =
    Jit.compile (Lower.lower forest { Schedule.default with interleave = il }) rows
  in
  let a = out_of 1 and b = out_of 8 in
  check_bool "bitwise equal" true
    (Array.for_all2 (fun x y -> Array.for_all2 Float.equal x y) a b)

let test_layouts_bitwise_equal () =
  let rng = Prng.create 5 in
  let forest = Forest.random ~num_trees:15 ~max_depth:7 ~num_features:6 rng in
  let rows = random_rows rng 6 32 in
  let out_of layout =
    Jit.compile (Lower.lower forest { Schedule.default with layout }) rows
  in
  let a = out_of Schedule.Array_layout and b = out_of Schedule.Sparse_layout in
  check_bool "bitwise equal" true
    (Array.for_all2 (fun x y -> Array.for_all2 Float.equal x y) a b)

(* Degenerate models. *)

let test_single_node_trees () =
  (* Depth-1 trees: every tile is under-full at tile size 8. *)
  let rng = Prng.create 6 in
  let trees =
    Array.init 10 (fun _ ->
        Tree.Node
          {
            feature = Prng.int rng 3;
            threshold = Prng.float rng 1.0;
            left = Tree.Leaf (Prng.uniform rng);
            right = Tree.Leaf (Prng.uniform rng);
          })
  in
  let forest = Forest.make ~task:Forest.Regression ~num_features:3 trees in
  let rows = random_rows rng 3 16 in
  let expected = Forest.predict_batch_raw forest rows in
  List.iter
    (fun schedule ->
      let out = Jit.compile (Lower.lower forest schedule) rows in
      check_bool "depth-1 forest" true (Array.for_all2 arrays_close out expected))
    schedules_under_test

let test_pure_chain_trees () =
  (* Maximally imbalanced trees exercise under-full tiles and deep sparse
     chains. *)
  let rec chain n =
    if n = 0 then Tree.Leaf 1.0
    else
      Tree.Node
        {
          feature = n mod 4;
          threshold = 0.0;
          left = Tree.Leaf (float_of_int n);
          right = chain (n - 1);
        }
  in
  let forest =
    Forest.make ~task:Forest.Regression ~num_features:4 [| chain 12; chain 9 |]
  in
  let rng = Prng.create 7 in
  let rows = random_rows rng 4 32 in
  let expected = Forest.predict_batch_raw forest rows in
  List.iter
    (fun schedule ->
      let out = Jit.compile (Lower.lower forest schedule) rows in
      check_bool "chain forest" true (Array.for_all2 arrays_close out expected))
    (* Array layout would blow up on deep tilings of chains; sparse-only
       schedules here. *)
    [
      Schedule.scalar_baseline;
      { Schedule.default with layout = Schedule.Sparse_layout };
      { Schedule.default with tile_size = 2; layout = Schedule.Sparse_layout };
    ]

let test_duplicate_feature_in_tile () =
  (* A tile whose lanes test the same feature with different thresholds —
     the gather reads one address twice; semantics must hold. *)
  let tree =
    Tree.Node
      {
        feature = 0;
        threshold = 0.5;
        left =
          Tree.Node
            { feature = 0; threshold = -0.5; left = Tree.Leaf 1.0; right = Tree.Leaf 2.0 };
        right =
          Tree.Node
            { feature = 0; threshold = 1.5; left = Tree.Leaf 3.0; right = Tree.Leaf 4.0 };
      }
  in
  let forest = Forest.make ~task:Forest.Regression ~num_features:1 [| tree |] in
  let check_at x expected =
    List.iter
      (fun schedule ->
        let out = Jit.compile (Lower.lower forest schedule) [| [| x |] |] in
        check_float (Printf.sprintf "x=%g" x) expected out.(0).(0))
      schedules_under_test
  in
  check_at (-1.0) 1.0;
  check_at 0.0 2.0;
  check_at 1.0 3.0;
  check_at 2.0 4.0

(* Profiler invariants. *)

let test_profiler_step_bounds () =
  let rng = Prng.create 8 in
  let forest = Forest.random ~num_trees:10 ~max_depth:7 ~num_features:6 rng in
  let lp = Lower.lower forest Schedule.default in
  let rows = random_rows rng 6 24 in
  let w = Profiler.profile ~target:Config.intel_rocket_lake lp rows in
  let steps = w.Cost_model.steps_checked + w.Cost_model.steps_unchecked in
  let max_depth_sum =
    Array.fold_left ( + ) 0 lp.Lower.walk_depth * Array.length rows
  in
  check_bool "steps bounded by depth sum" true (steps <= max_depth_sum);
  check_bool "critical <= steps" true (w.Cost_model.critical_steps <= steps);
  check_bool "at least one access per step" true
    (w.Cost_model.l1.Cache.accesses >= steps)

let test_profiler_row_count_scaling () =
  let rng = Prng.create 9 in
  let forest = Forest.random ~num_trees:10 ~max_depth:6 ~num_features:6 rng in
  let lp = Lower.lower forest Schedule.scalar_baseline in
  let rows = random_rows rng 6 64 in
  let w32 = Profiler.profile ~target:Config.intel_rocket_lake lp (Array.sub rows 0 32) in
  let w64 = Profiler.profile ~target:Config.intel_rocket_lake lp rows in
  check_int "walks double" (2 * w32.Cost_model.walks_checked) w64.Cost_model.walks_checked

(* Cost-model monotonicity. *)

let base_workload =
  {
    Cost_model.rows = 100;
    walks_checked = 1000;
    walks_unrolled = 0;
    steps_checked = 5000;
    steps_unchecked = 0;
    leaf_fetches = 1000;
    critical_steps = 5000;
    l1 = { Cache.accesses = 20000; hits = 18000; misses = 2000 };
    code_bytes = 4096;
    model_bytes = 100_000;
    tile_size = 4;
    layout = Layout.Sparse_kind;
  }

let test_cost_monotone_in_misses () =
  let cfg = Config.intel_rocket_lake in
  let cycles w = (Cost_model.estimate cfg w).Cost_model.cycles in
  let more_misses =
    { base_workload with Cost_model.l1 = { Cache.accesses = 20000; hits = 10000; misses = 10000 } }
  in
  check_bool "misses cost" true (cycles more_misses > cycles base_workload)

let test_cost_monotone_in_steps () =
  let cfg = Config.intel_rocket_lake in
  let cycles w = (Cost_model.estimate cfg w).Cost_model.cycles in
  let more_steps =
    { base_workload with Cost_model.steps_checked = 10000; critical_steps = 10000 }
  in
  check_bool "steps cost" true (cycles more_steps > cycles base_workload)

let test_cost_l2_spill_penalty () =
  let cfg = Config.intel_rocket_lake in
  let cycles w = (Cost_model.estimate cfg w).Cost_model.cycles in
  let spilled = { base_workload with Cost_model.model_bytes = 100_000_000 } in
  check_bool "spill penalized" true (cycles spilled > cycles base_workload)

let test_cost_breakdown_sums () =
  let cfg = Config.intel_rocket_lake in
  let b = Cost_model.estimate cfg base_workload in
  let total =
    Float.max b.Cost_model.retiring (b.Cost_model.retiring +. b.Cost_model.backend_core)
    +. b.Cost_model.backend_memory +. b.Cost_model.bad_speculation +. b.Cost_model.frontend
  in
  check_bool "components consistent with total" true
    (Float.abs (total -. b.Cost_model.cycles) /. b.Cost_model.cycles < 0.01)

let test_multicore_never_slower () =
  let cfg = Config.amd_ryzen7 in
  let prev = ref Float.infinity in
  List.iter
    (fun threads ->
      let c = Tb_cpu.Multicore.cycles cfg ~threads 1e9 in
      check_bool "monotone in threads" true (c <= !prev +. 1.0);
      prev := c)
    [ 1; 2; 4; 8; 16 ]

(* Schedule-space sweep on one fixed forest: every Table II schedule
   compiles and is exact (the full 256-point grid). *)
let test_full_table2_grid_equivalence () =
  let rng = Prng.create 10 in
  let forest = Forest.random ~num_trees:6 ~max_depth:6 ~num_features:5 rng in
  let rows = random_rows rng 5 8 in
  let profiles = Tb_model.Model_stats.profile_forest forest rows in
  let expected = Forest.predict_batch_raw forest rows in
  List.iter
    (fun schedule ->
      match Lower.lower ~profiles forest schedule with
      | exception Invalid_argument _ -> () (* array-slab cap on deep tilings *)
      | lp ->
        let out = Jit.compile lp rows in
        check_bool (Schedule.to_string schedule) true
          (Array.for_all2 arrays_close out expected))
    Schedule.table2_grid

let suite =
  [
    quick "NaN rows consistent across backends" test_nan_rows_consistent;
    quick "infinite features consistent" test_infinite_features_consistent;
    quick "loop orders bitwise equal" test_loop_orders_bitwise_equal;
    quick "interleave bitwise equal" test_interleave_bitwise_equal;
    quick "layouts bitwise equal" test_layouts_bitwise_equal;
    quick "depth-1 forests" test_single_node_trees;
    quick "chain forests" test_pure_chain_trees;
    quick "duplicate feature in tile" test_duplicate_feature_in_tile;
    quick "profiler step bounds" test_profiler_step_bounds;
    quick "profiler row-count scaling" test_profiler_row_count_scaling;
    quick "cost monotone in misses" test_cost_monotone_in_misses;
    quick "cost monotone in steps" test_cost_monotone_in_steps;
    quick "L2 spill penalized" test_cost_l2_spill_penalty;
    quick "breakdown sums to cycles" test_cost_breakdown_sums;
    quick "multicore never slower" test_multicore_never_slower;
    quick "full Table II grid equivalence" test_full_table2_grid_equivalence;
  ]
