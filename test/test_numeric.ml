(* Soundness harness for the quantization certifier (Tb_analysis.Numeric).

   The certificate makes four statically-proved claims; the harness
   replays concrete quantized executions of random models against every
   one of them:

   - accumulators: every integer class accumulator of every row stays
     within the proved acc_bound, and acc_bound itself is within the
     doubled-width cap unless N001 fired;
   - routing: on rows outside every rounding dead zone
     (dead_zone_row = false), the quantized path reaches exactly the
     leaf the float path reaches, tree by tree;
   - deviation: on those routing-stable rows, the dequantized output is
     within the proved dev_bound of the Neumaier float reference;
   - flips: a routing-stable row whose argmax/sign differs between the
     two paths can only exist when the certificate announced the risk
     (N004, ambiguous_pairs > 0).

   The seeded tests are the negative half: models constructed to
   overflow the accumulator, collide thresholds, blow the tolerance or
   flip a margin must produce exactly the advertised finding. *)

open Helpers
module Prng = Tb_util.Prng
module Stats = Tb_util.Stats
module Json = Tb_util.Json
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Numeric = Tb_analysis.Numeric
module D = Tb_diag.Diagnostic

let codes (cert : Numeric.certificate) =
  List.map (fun d -> d.D.code) cert.Numeric.findings

let has code cert = List.mem code (codes cert)

(* Random model covering all three tasks — Forest.random is
   single-output only, so multiclass ensembles are assembled by hand
   (one tree per class per round, the XGBoost convention Forest.make
   checks). *)
let random_model rng =
  let num_features = 1 + Prng.int rng 6 in
  let tree () = Tree.random ~max_depth:(2 + Prng.int rng 4) ~num_features rng in
  let base_score = Prng.float rng 1.0 -. 0.5 in
  match Prng.int rng 3 with
  | 0 ->
    let trees = Array.init (1 + Prng.int rng 8) (fun _ -> tree ()) in
    Forest.make ~name:"storm-reg" ~base_score ~task:Forest.Regression
      ~num_features trees
  | 1 ->
    let trees = Array.init (1 + Prng.int rng 8) (fun _ -> tree ()) in
    Forest.make ~name:"storm-bin" ~base_score ~task:Forest.Binary_logistic
      ~num_features trees
  | _ ->
    let k = 2 + Prng.int rng 3 in
    let rounds = 1 + Prng.int rng 3 in
    let trees = Array.init (k * rounds) (fun _ -> tree ()) in
    Forest.make ~name:"storm-multi" ~base_score ~task:(Forest.Multiclass k)
      ~num_features trees

let soundness_property seed =
  let rng = Prng.create seed in
  let forest = random_model rng in
  let width = if Prng.int rng 2 = 0 then Numeric.I8 else Numeric.I16 in
  let cert = Numeric.certify ~width forest in
  let plan = cert.Numeric.plan in
  let fail fmt = QCheck2.Test.fail_reportf fmt in
  (* Static claim: no N001 means the accumulator bound fits the cap. *)
  if not (has "N001" cert) then
    Array.iter
      (fun b ->
        if b > plan.Numeric.acc_max then
          fail "acc_bound %d exceeds cap %d yet no N001 fired" b
            plan.Numeric.acc_max)
      cert.Numeric.acc_bound;
  let qm = Numeric.quantize plan forest in
  (* Ordinary rows plus scaled-up ones that exercise input saturation. *)
  let rows =
    Array.append
      (random_rows rng forest.Forest.num_features 16)
      (Array.map
         (Array.map (fun x -> 1e3 *. x))
         (random_rows rng forest.Forest.num_features 4))
  in
  Array.iter
    (fun row ->
      let qrow = Numeric.quantize_input plan row in
      let acc = Numeric.qpredict_acc qm qrow in
      Array.iteri
        (fun c a ->
          if abs a > cert.Numeric.acc_bound.(c) then
            fail "class %d accumulator %d outside proved bound %d" c a
              cert.Numeric.acc_bound.(c))
        acc;
      if not (Numeric.dead_zone_row plan forest row) then begin
        (* Routing-stable: same leaf per tree ... *)
        Array.iteri
          (fun i qt ->
            let got = Numeric.qtree_leaf_index qt qrow in
            let want = Tree.predict_leaf_index forest.Forest.trees.(i) row in
            if got <> want then
              fail "tree %d: quantized routing reached leaf %d, float %d, \
                    on a row outside every dead zone"
                i got want)
          qm.Numeric.qtrees;
        (* ... deviation within the proved bound ... *)
        let q = Numeric.qpredict_raw qm row in
        let f = Numeric.reference_raw forest row in
        Array.iteri
          (fun c qv ->
            let dev = Float.abs (qv -. f.(c)) in
            if dev > cert.Numeric.dev_bound.(c) then
              fail "class %d measured deviation %g exceeds proved %g" c dev
                cert.Numeric.dev_bound.(c))
          q;
        (* ... and a decision flip only where N004 announced it. *)
        let flipped =
          match forest.Forest.task with
          | Forest.Regression -> false
          | Forest.Binary_logistic -> q.(0) >= 0.0 <> (f.(0) >= 0.0)
          | Forest.Multiclass _ -> Stats.argmax q <> Stats.argmax f
        in
        if flipped && cert.Numeric.ambiguous_pairs = 0 then
          fail "decision flipped on a routing-stable row but N004 did not \
                fire"
      end)
    rows;
  true

(* ---------------- summary / prefix tables ---------------- *)

let test_summarize_census () =
  (* f0 < 1.0 ? (f1 < 2.0 ? 1 : 2) : (f0 < 1.5 ? 3 : 4) *)
  let tree =
    Tree.Node
      {
        feature = 0;
        threshold = 1.0;
        left =
          Tree.Node
            { feature = 1; threshold = 2.0; left = Tree.Leaf 1.0;
              right = Tree.Leaf 2.0 };
        right =
          Tree.Node
            { feature = 0; threshold = 1.5; left = Tree.Leaf 3.0;
              right = Tree.Leaf 4.0 };
      }
  in
  let forest =
    Forest.make ~base_score:0.5 ~task:Forest.Regression ~num_features:3
      [| tree |]
  in
  let s = Numeric.summarize forest in
  let f0 = s.Numeric.features.(0) in
  check_int "f0 occurrences" 2 f0.Numeric.occurrences;
  check_int "f0 distinct" 2 f0.Numeric.distinct;
  check_float "f0 lo" 1.0 f0.Numeric.range.Numeric.lo;
  check_float "f0 hi" 1.5 f0.Numeric.range.Numeric.hi;
  check_float "f0 min gap" 0.5 f0.Numeric.min_gap;
  let f2 = s.Numeric.features.(2) in
  check_int "unused feature has no thresholds" 0 f2.Numeric.occurrences;
  check_bool "unused min_gap infinite" true (f2.Numeric.min_gap = infinity);
  check_float "tree lo" 1.0 s.Numeric.tree_values.(0).Numeric.lo;
  check_float "tree hi" 4.0 s.Numeric.tree_values.(0).Numeric.hi;
  check_float "class lo includes base" 1.5 s.Numeric.class_bounds.(0).Numeric.lo;
  check_float "class hi includes base" 4.5 s.Numeric.class_bounds.(0).Numeric.hi

let test_prefix_bounds_partial_sums () =
  let rng = Prng.create 97 in
  for _ = 1 to 25 do
    let forest = random_model rng in
    let n = Array.length forest.Forest.trees in
    let k = Forest.num_outputs forest in
    (* Random permutation. *)
    let order = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Prng.int rng (i + 1) in
      let t = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- t
    done;
    let pt = Numeric.prefix_bounds ~order forest in
    for c = 0 to k - 1 do
      check_float "suffix at n is empty" 0.0 pt.Numeric.suffix_lo.(c).(n);
      check_float "suffix at n is empty" 0.0 pt.Numeric.suffix_hi.(c).(n)
    done;
    let rows = random_rows rng forest.Forest.num_features 8 in
    Array.iter
      (fun row ->
        let preds =
          Array.map (fun t -> Tree.predict t row) forest.Forest.trees
        in
        (* Walk the order backward accumulating the true suffix sums,
           checking containment at every prefix length. *)
        let suffix = Array.make k 0.0 in
        let slack = ref 1e-9 in
        for pos = n downto 0 do
          for c = 0 to k - 1 do
            let iv = Numeric.suffix_interval pt ~cls:c ~prefix:pos in
            if
              suffix.(c) < iv.Numeric.lo -. !slack
              || suffix.(c) > iv.Numeric.hi +. !slack
            then
              Alcotest.failf
                "class %d prefix %d: suffix sum %g outside [%g, %g]" c pos
                suffix.(c) iv.Numeric.lo iv.Numeric.hi
          done;
          if pos > 0 then begin
            let t = order.(pos - 1) in
            let c = Forest.class_of_tree forest t in
            suffix.(c) <- suffix.(c) +. preds.(t);
            slack := !slack +. (1e-12 *. Float.abs preds.(t))
          end
        done;
        (* Prefix 0 ties the table to the summary's class bounds. *)
        let s = Numeric.summarize forest in
        for c = 0 to k - 1 do
          let iv = Numeric.suffix_interval pt ~cls:c ~prefix:0 in
          check_bool "class_bounds = base + suffix(0)" true
            (floats_close ~eps:1e-9
               (forest.Forest.base_score +. iv.Numeric.lo)
               s.Numeric.class_bounds.(c).Numeric.lo
            && floats_close ~eps:1e-9
                 (forest.Forest.base_score +. iv.Numeric.hi)
                 s.Numeric.class_bounds.(c).Numeric.hi)
        done)
      rows
  done

let test_prefix_bounds_rejects_non_permutation () =
  let rng = Prng.create 3 in
  let forest = Forest.random ~num_trees:4 ~num_features:3 rng in
  Alcotest.check_raises "duplicate index"
    (Invalid_argument "Numeric.prefix_bounds: order is not a permutation")
    (fun () -> ignore (Numeric.prefix_bounds ~order:[| 0; 1; 2; 2 |] forest));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Numeric.prefix_bounds: order length mismatch")
    (fun () -> ignore (Numeric.prefix_bounds ~order:[| 0; 1 |] forest))

(* ---------------- seeded findings ---------------- *)

let leafy v = Tree.Leaf v

let test_n001_accumulator_overflow () =
  (* 600 trees, every leaf ~100: at int8 the leaf scale keeps each
     quantized leaf near 127, and 600 * 127 overflows the 16-bit
     accumulator; at int16 the 32-bit accumulator absorbs it. *)
  let trees = Array.init 600 (fun _ -> leafy 100.0) in
  let forest =
    Forest.make ~task:Forest.Regression ~num_features:1 trees
  in
  let c8 = Numeric.certify ~width:Numeric.I8 forest in
  check_bool "int8 accumulator overflow fires N001" true (has "N001" c8);
  check_bool "acc bound exceeds cap" true
    (c8.Numeric.acc_bound.(0) > c8.Numeric.plan.Numeric.acc_max);
  let c16 = Numeric.certify ~width:Numeric.I16 forest in
  check_bool "int16 accumulator fits" false (has "N001" c16)

let test_n001_unscalable_threshold () =
  (* A threshold of 1e30 cannot be brought into int8 range even at the
     2^-60 floor. *)
  let tree =
    Tree.Node
      { feature = 0; threshold = 1e30; left = leafy 0.0; right = leafy 1.0 }
  in
  let forest =
    Forest.make ~task:Forest.Regression ~num_features:1 [| tree |]
  in
  let cert = Numeric.certify ~width:Numeric.I8 forest in
  check_bool "unscalable threshold fires N001" true (has "N001" cert)

let test_n002_threshold_collision () =
  (* 1.0 and 1.004 on one feature: at int8 the scale is 2^6 and both
     round to 64; at int16 the scale is 2^14 and they separate. *)
  let node t l r = Tree.Node { feature = 0; threshold = t; left = l; right = r } in
  let tree = node 1.0 (leafy 0.0) (node 1.004 (leafy 1.0) (leafy 2.0)) in
  let forest =
    Forest.make ~task:Forest.Regression ~num_features:1 [| tree |]
  in
  let c8 = Numeric.certify ~width:Numeric.I8 forest in
  check_bool "int8 collision fires N002" true (has "N002" c8);
  (match c8.Numeric.collisions with
  | [ col ] ->
    check_int "one collided pair" 1 col.Numeric.pairs;
    check_bool "dead zone width reported" true
      (floats_close ~eps:1e-9 col.Numeric.widest_gap 0.004)
  | l -> Alcotest.failf "expected one collision record, got %d" (List.length l));
  let c16 = Numeric.certify ~width:Numeric.I16 forest in
  check_bool "int16 separates the thresholds" false (has "N002" c16)

let test_n003_tolerance () =
  let rng = Prng.create 5 in
  let forest = Forest.random ~num_trees:6 ~max_depth:4 ~num_features:3 rng in
  let tight = Numeric.certify ~tolerance:1e-12 ~width:Numeric.I8 forest in
  check_bool "impossible tolerance fires N003" true (has "N003" tight);
  let loose = Numeric.certify ~tolerance:1e6 ~width:Numeric.I8 forest in
  check_bool "huge tolerance passes N003" false (has "N003" loose);
  check_bool "dev bound positive" true (tight.Numeric.dev_bound.(0) > 0.0)

let test_n004_margin_flip () =
  (* Binary model whose reachable margin straddles 0: flip risk. *)
  let node t l r = Tree.Node { feature = 0; threshold = t; left = l; right = r } in
  let risky =
    Forest.make ~task:Forest.Binary_logistic ~num_features:1
      [| node 0.5 (leafy (-0.001)) (leafy 0.001) |]
  in
  let cert = Numeric.certify ~width:Numeric.I8 risky in
  check_bool "near-zero margin fires N004" true (has "N004" cert);
  check_bool "ambiguous pair counted" true (cert.Numeric.ambiguous_pairs > 0);
  (* Same shape but margins far from 0 on both sides: no flip possible. *)
  let safe =
    Forest.make ~base_score:0.0 ~task:Forest.Binary_logistic ~num_features:1
      [| node 0.5 (leafy 50.0) (leafy 80.0) |]
  in
  let cert = Numeric.certify ~width:Numeric.I16 safe in
  check_bool "decided margin passes N004" false (has "N004" cert);
  check_int "no ambiguous pairs" 0 cert.Numeric.ambiguous_pairs;
  (* Regression never fires N004. *)
  let reg =
    Forest.make ~task:Forest.Regression ~num_features:1
      [| node 0.5 (leafy (-0.001)) (leafy 0.001) |]
  in
  check_bool "regression exempt from N004" false
    (has "N004" (Numeric.certify ~width:Numeric.I8 reg))

let test_width_strings () =
  List.iter
    (fun w ->
      match Numeric.width_of_string (Numeric.width_to_string w) with
      | Ok w' -> check_bool "width round trip" true (w = w')
      | Error e -> Alcotest.fail e)
    [ Numeric.I8; Numeric.I16 ];
  check_int "int8 bits" 8 (Numeric.bits Numeric.I8);
  check_int "int16 bits" 16 (Numeric.bits Numeric.I16);
  check_bool "unknown width rejected" true
    (Result.is_error (Numeric.width_of_string "int32"))

let test_report_json () =
  let rng = Prng.create 13 in
  let forest = random_model rng in
  let cert = Numeric.certify ~width:Numeric.I16 forest in
  let j = Numeric.report_to_json cert in
  check_string "model name" forest.Forest.name
    (Json.to_str (Json.member "model" j));
  check_string "width" "int16" (Json.to_str (Json.member "width" j));
  check_int "findings serialized"
    (List.length cert.Numeric.findings)
    (List.length (Json.to_list (Json.member "findings" j)));
  check_int "one dev bound per class"
    (Forest.num_outputs forest)
    (List.length (Json.to_list (Json.member "dev_bound" j)))

let test_certified_clean_model () =
  (* Exactly-representable thresholds and leaves, decided margin: clean
     at both widths under a modest tolerance. *)
  let node t l r = Tree.Node { feature = 0; threshold = t; left = l; right = r } in
  let forest =
    Forest.make ~base_score:0.0 ~task:Forest.Regression ~num_features:1
      [| node 1.5 (leafy 2.0) (leafy 4.0); node 0.25 (leafy (-1.0)) (leafy 1.0) |]
  in
  List.iter
    (fun width ->
      let cert = Numeric.certify ~width forest in
      check_bool "power-of-two model certifies clean" true
        (Numeric.certified_clean cert);
      (* Exact representation: deviation bound collapses to the float
         slack, orders of magnitude under the tolerance. *)
      check_bool "dev bound tiny" true (cert.Numeric.dev_bound.(0) < 1e-9))
    [ Numeric.I8; Numeric.I16 ]

let suite =
  [
    qcheck ~count:200
      ~name:
        "quantized replay within proved bounds (acc/routing/deviation/flip)"
      seed_gen soundness_property;
    quick "summarize: censuses + intervals" test_summarize_census;
    quick "prefix tables bound every partial sum"
      test_prefix_bounds_partial_sums;
    quick "prefix tables reject non-permutations"
      test_prefix_bounds_rejects_non_permutation;
    quick "N001: accumulator overflow at int8 only"
      test_n001_accumulator_overflow;
    quick "N001: unscalable threshold" test_n001_unscalable_threshold;
    quick "N002: threshold collision reports dead zone"
      test_n002_threshold_collision;
    quick "N003: tolerance gates the deviation bound" test_n003_tolerance;
    quick "N004: margin flip risk, classification only"
      test_n004_margin_flip;
    quick "width parsing round trips" test_width_strings;
    quick "certificate JSON report" test_report_json;
    quick "exactly-representable model certifies clean"
      test_certified_clean_model;
  ]
