open Helpers
module Prng = Tb_util.Prng
module Dataset = Tb_data.Dataset
module Generators = Tb_data.Generators
module Forest = Tb_model.Forest

let test_make_validates () =
  check_bool "ragged" true
    (match Dataset.make ~name:"x" ~task:Forest.Regression [| [| 1.0 |]; [| 1.0; 2.0 |] |] [| 0.0; 0.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "label count" true
    (match Dataset.make ~name:"x" ~task:Forest.Regression [| [| 1.0 |] |] [||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "binary labels" true
    (match Dataset.make ~name:"x" ~task:Forest.Binary_logistic [| [| 1.0 |] |] [| 0.5 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "class range" true
    (match Dataset.make ~name:"x" ~task:(Forest.Multiclass 3) [| [| 1.0 |] |] [| 3.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_split_partitions () =
  let rng = Prng.create 1 in
  let feats = Array.init 100 (fun i -> [| float_of_int i |]) in
  let labels = Array.init 100 float_of_int in
  let ds = Dataset.make ~name:"x" ~task:Forest.Regression feats labels in
  let train, test = Dataset.split ds ~train_fraction:0.8 rng in
  check_int "train size" 80 (Dataset.num_rows train);
  check_int "test size" 20 (Dataset.num_rows test);
  (* Disjoint and complete: feature values are unique row ids. *)
  let seen = Array.make 100 0 in
  let count d =
    Array.iter (fun r -> seen.(int_of_float r.(0)) <- seen.(int_of_float r.(0)) + 1) d.Dataset.features
  in
  count train;
  count test;
  Array.iter (fun c -> check_int "each row once" 1 c) seen

let test_subsample_rows () =
  let rng = Prng.create 2 in
  let ds = Generators.letter ~rows:100 rng in
  let batch = Dataset.subsample_rows ds 256 (Prng.create 3) in
  check_int "batch size" 256 (Array.length batch);
  Array.iter
    (fun row -> check_int "row width" ds.Dataset.num_features (Array.length row))
    batch

(* Table I conformance: feature counts and task types. *)
let table1 =
  [
    ("abalone", 8, `Regression);
    ("airline", 13, `Binary);
    ("airline-ohe", 692, `Binary);
    ("covtype", 54, `Binary);
    ("epsilon", 2000, `Binary);
    ("letter", 16, `Multiclass 26);
    ("higgs", 28, `Binary);
    ("year", 90, `Regression);
  ]

let test_generators_match_table1 () =
  List.iter
    (fun (name, features, task) ->
      let ds = Generators.by_name name ~rows:64 (Prng.create 17) in
      check_int (name ^ " features") features ds.Dataset.num_features;
      check_int (name ^ " rows") 64 (Dataset.num_rows ds);
      check_string (name ^ " name") name ds.Dataset.name;
      check_bool (name ^ " task") true
        (match (task, ds.Dataset.task) with
        | `Regression, Forest.Regression -> true
        | `Binary, Forest.Binary_logistic -> true
        | `Multiclass k, Forest.Multiclass k' -> k = k'
        | _ -> false))
    table1

let test_generators_deterministic () =
  List.iter
    (fun name ->
      let a = Generators.by_name name ~rows:16 (Prng.create 5) in
      let b = Generators.by_name name ~rows:16 (Prng.create 5) in
      check_bool (name ^ " deterministic") true (a.Dataset.features = b.Dataset.features);
      check_bool (name ^ " labels deterministic") true (a.Dataset.labels = b.Dataset.labels))
    Generators.names

let test_generator_names_complete () =
  check_int "eight benchmarks" 8 (List.length Generators.names);
  check_bool "unknown rejected" true
    (match Generators.by_name "nope" ~rows:1 (Prng.create 0) with
    | exception Not_found -> true
    | (_ : Dataset.t) -> false)

let test_ohe_rows_are_indicators () =
  let ds = Generators.airline_ohe ~rows:50 (Prng.create 6) in
  Array.iter
    (fun row ->
      (* The categorical block (first 600 columns) is strictly 0/1 with
         exactly 6 set bits (one per field). *)
      let set = ref 0 in
      for j = 0 to 599 do
        check_bool "indicator" true (row.(j) = 0.0 || row.(j) = 1.0);
        if row.(j) = 1.0 then incr set
      done;
      check_int "six categorical fields" 6 !set)
    ds.Dataset.features

let test_covtype_indicator_blocks () =
  let ds = Generators.covtype ~rows:50 (Prng.create 7) in
  Array.iter
    (fun row ->
      let wilderness = Array.sub row 10 4 and soil = Array.sub row 14 40 in
      let ones a = Array.fold_left (fun acc v -> if v = 1.0 then acc + 1 else acc) 0 a in
      check_int "one wilderness" 1 (ones wilderness);
      check_int "one soil" 1 (ones soil))
    ds.Dataset.features

let test_letter_feature_range () =
  let ds = Generators.letter ~rows:100 (Prng.create 8) in
  Array.iter
    (fun row ->
      Array.iter
        (fun v -> check_bool "0..15 integer grid" true (v >= 0.0 && v <= 15.0 && Float.is_integer v))
        row)
    ds.Dataset.features

let test_head_heavy_duplication () =
  (* airline-ohe: the dominant template row must repeat many times. *)
  let ds = Generators.airline_ohe ~rows:400 (Prng.create 9) in
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      let key = Hashtbl.hash (Array.to_list row) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    ds.Dataset.features;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) tbl 0 in
  check_bool "head-heavy (top row > 25% of rows)" true (max_count > 100)

let suite =
  [
    quick "dataset validation" test_make_validates;
    quick "split partitions rows" test_split_partitions;
    quick "subsample rows" test_subsample_rows;
    quick "generators match Table I" test_generators_match_table1;
    quick "generators deterministic" test_generators_deterministic;
    quick "generator registry complete" test_generator_names_complete;
    quick "one-hot rows are indicators" test_ohe_rows_are_indicators;
    quick "covtype indicator blocks" test_covtype_indicator_blocks;
    quick "letter feature grid" test_letter_feature_range;
    quick "head-heavy duplication" test_head_heavy_duplication;
  ]
