open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Xgboost = Tb_baselines.Xgboost
module Treelite = Tb_baselines.Treelite
module Hummingbird = Tb_baselines.Hummingbird
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model
module Cache = Tb_cpu.Cache

let random_setup ?(num_trees = 10) seed =
  let rng = Prng.create seed in
  let forest = Forest.random ~num_trees ~max_depth:7 ~num_features:6 rng in
  let rows = random_rows rng 6 32 in
  (forest, rows)

let xgboost_equivalence_property version seed =
  let forest, rows = random_setup seed in
  let packed = Xgboost.compile forest in
  let out = Xgboost.predict_batch packed version rows in
  let expected = Forest.predict_batch_raw forest rows in
  Array.for_all2 arrays_close out expected
  || QCheck2.Test.fail_report "xgboost baseline diverges"

let treelite_equivalence_property seed =
  let forest, rows = random_setup seed in
  let compiled = Treelite.compile forest in
  let out = Treelite.predict_batch compiled rows in
  let expected = Forest.predict_batch_raw forest rows in
  Array.for_all2 arrays_close out expected
  || QCheck2.Test.fail_report "treelite baseline diverges"

let hummingbird_equivalence_property seed =
  let forest, rows = random_setup ~num_trees:6 seed in
  let compiled = Hummingbird.compile forest in
  let out = Hummingbird.predict_batch compiled rows in
  let expected = Forest.predict_batch_raw forest rows in
  (Array.for_all2 (fun a b -> arrays_close ~eps:1e-6 a b) out expected)
  || QCheck2.Test.fail_report "hummingbird baseline diverges"

let test_baselines_multiclass () =
  let rng = Prng.create 1 in
  let trees = Array.init 6 (fun _ -> Tb_model.Tree.random ~max_depth:4 ~num_features:4 rng) in
  let forest = Forest.make ~task:(Forest.Multiclass 3) ~num_features:4 trees in
  let rows = random_rows rng 4 16 in
  let expected = Forest.predict_batch_raw forest rows in
  let xg = Xgboost.predict_batch (Xgboost.compile forest) Xgboost.V15 rows in
  let tl = Treelite.predict_batch (Treelite.compile forest) rows in
  let hb = Hummingbird.predict_batch (Hummingbird.compile forest) rows in
  check_bool "xgboost" true (Array.for_all2 arrays_close xg expected);
  check_bool "treelite" true (Array.for_all2 arrays_close tl expected);
  check_bool "hummingbird" true
    (Array.for_all2 (fun a b -> arrays_close ~eps:1e-6 a b) hb expected)

let test_xgboost_versions_agree () =
  let forest, rows = random_setup 2 in
  let packed = Xgboost.compile forest in
  let a = Xgboost.predict_batch packed Xgboost.V09 rows in
  let b = Xgboost.predict_batch packed Xgboost.V15 rows in
  check_bool "v09 == v15 output" true (Array.for_all2 arrays_close a b)

let test_xgboost_v15_better_cache () =
  (* Loop interchange (the 0.9 -> 1.5 change) must reduce L1 misses on a
     model bigger than L1. *)
  let rng = Prng.create 3 in
  let forest = Forest.random ~num_trees:150 ~max_depth:7 ~num_features:6 rng in
  let rows = random_rows rng 6 64 in
  let packed = Xgboost.compile forest in
  let miss v =
    (Xgboost.profile ~target:Config.intel_rocket_lake packed v rows).Cost_model.l1.Cache.misses
  in
  check_bool "v15 fewer misses" true (miss Xgboost.V15 < miss Xgboost.V09)

let test_xgboost_memory_accounting () =
  let forest, _ = random_setup 4 in
  let packed = Xgboost.compile forest in
  let nodes = Forest.total_nodes forest + Forest.total_leaves forest in
  check_int "16B per node" (16 * nodes) (Xgboost.memory_bytes packed)

let test_treelite_code_grows_with_model () =
  let small, _ = random_setup ~num_trees:2 5 in
  let large, _ = random_setup ~num_trees:40 5 in
  check_bool "code size grows" true
    (Treelite.code_bytes (Treelite.compile large)
    > Treelite.code_bytes (Treelite.compile small))

let test_treelite_frontend_bound_on_big_model () =
  let rng = Prng.create 6 in
  let forest = Forest.random ~num_trees:300 ~max_depth:7 ~num_features:6 rng in
  let rows = random_rows rng 6 32 in
  let compiled = Treelite.compile forest in
  let w = Treelite.profile ~target:Config.intel_rocket_lake compiled rows in
  let b = Cost_model.estimate Config.intel_rocket_lake w in
  check_bool "front-end dominates"
    true
    (b.Cost_model.frontend > 0.3 *. b.Cost_model.cycles)

let test_hummingbird_macs_scale_with_model () =
  let small = Hummingbird.compile (fst (random_setup ~num_trees:2 7)) in
  let large = Hummingbird.compile (fst (random_setup ~num_trees:40 7)) in
  check_bool "macs grow" true (Hummingbird.macs_per_row large > Hummingbird.macs_per_row small)

let test_hummingbird_core_cap () =
  let t = Hummingbird.compile (fst (random_setup 8)) in
  let target = Config.intel_rocket_lake in
  let c1 = Hummingbird.cycles_per_row ~target ~threads:1 t in
  let c4 = Hummingbird.cycles_per_row ~target ~threads:4 t in
  let c16 = Hummingbird.cycles_per_row ~target ~threads:16 t in
  check_bool "some scaling" true (c4 < c1);
  (* Beyond the cap, scaling stops improving meaningfully. *)
  check_bool "capped scaling" true (c1 /. c16 <= float_of_int Hummingbird.effective_core_cap +. 0.01)

let suite =
  [
    qcheck ~name:"xgboost v0.9 == reference" seed_gen
      (xgboost_equivalence_property Xgboost.V09);
    qcheck ~name:"xgboost v1.5 == reference" seed_gen
      (xgboost_equivalence_property Xgboost.V15);
    qcheck ~name:"treelite == reference" seed_gen treelite_equivalence_property;
    qcheck ~count:60 ~name:"hummingbird == reference" seed_gen
      hummingbird_equivalence_property;
    quick "baselines multiclass" test_baselines_multiclass;
    quick "xgboost loop orders agree" test_xgboost_versions_agree;
    quick "xgboost v1.5 better cache" test_xgboost_v15_better_cache;
    quick "xgboost memory accounting" test_xgboost_memory_accounting;
    quick "treelite code grows with model" test_treelite_code_grows_with_model;
    quick "treelite front-end bound" test_treelite_frontend_bound_on_big_model;
    quick "hummingbird macs scale" test_hummingbird_macs_scale_with_model;
    quick "hummingbird core cap" test_hummingbird_core_cap;
  ]
