(* Differential harness across the three executors.

   For a random forest paired with a random schedule drawn from the full
   Table II grid, the two optimizing backends — the closure JIT and the
   Reg_ir interpreter — must agree *bitwise*: they implement the same
   accumulation order, so any divergence is a real compilation bug, not
   floating-point slack. Both must also agree with the naive scalar walk
   over the source forest ({!Forest.predict_batch_raw}) within 1e-5, which
   pins the semantics rather than the instruction schedule (tree reordering
   changes the summation order, so bitwise equality is not expected
   there). *)

open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Lower = Tb_lir.Lower
module Jit = Tb_vm.Jit
module Interp = Tb_vm.Interp

let grid = Array.of_list Schedule.table2_grid

let random_forest rng =
  if Prng.int rng 4 = 0 then
    (* Multiclass exercises the margin-matrix path. *)
    let num_classes = 2 + Prng.int rng 3 in
    let trees =
      Array.init
        (num_classes * (1 + Prng.int rng 4))
        (fun _ -> Tb_model.Tree.random ~max_depth:(3 + Prng.int rng 4) ~num_features:6 rng)
    in
    Forest.make ~task:(Forest.Multiclass num_classes) ~num_features:6 trees
  else
    Forest.random ~num_trees:(1 + Prng.int rng 12)
      ~max_depth:(2 + Prng.int rng 6) ~num_features:6 rng

let differential_property seed =
  let rng = Prng.create seed in
  let forest = random_forest rng in
  let schedule = grid.(Prng.int rng (Array.length grid)) in
  let rows = random_rows rng 6 (1 + Prng.int rng 30) in
  let lp = Lower.lower forest schedule in
  let jit = Jit.compile lp rows in
  let interp = Interp.compile lp rows in
  let reference = Forest.predict_batch_raw forest rows in
  let bitwise =
    Array.for_all2 (fun a b -> Array.for_all2 Float.equal a b) jit interp
  in
  let close out =
    Array.for_all2 (fun a b -> arrays_close ~eps:1e-5 a b) out reference
  in
  if not bitwise then
    QCheck2.Test.fail_reportf "JIT <> Interp (bitwise) under %s"
      (Schedule.to_string schedule)
  else if not (close jit) then
    QCheck2.Test.fail_reportf "JIT <> naive walk under %s"
      (Schedule.to_string schedule)
  else if not (close interp) then
    QCheck2.Test.fail_reportf "Interp <> naive walk under %s"
      (Schedule.to_string schedule)
  else true

(* Deterministic sweep of the whole grid on one fixed forest: slower than
   the random pairing above but guarantees every Table II point is hit at
   least once per run. *)
let test_full_grid_one_forest () =
  let rng = Prng.create 99 in
  let forest = Forest.random ~num_trees:7 ~max_depth:6 ~num_features:6 rng in
  let rows = random_rows rng 6 12 in
  let reference = Forest.predict_batch_raw forest rows in
  List.iter
    (fun schedule ->
      let lp = Lower.lower forest schedule in
      let jit = Jit.compile lp rows in
      let interp = Interp.compile lp rows in
      if
        not
          (Array.for_all2
             (fun a b -> Array.for_all2 Float.equal a b)
             jit interp)
      then Alcotest.failf "JIT <> Interp: %s" (Schedule.to_string schedule);
      if not (Array.for_all2 (fun a b -> arrays_close ~eps:1e-5 a b) jit reference)
      then Alcotest.failf "JIT <> reference: %s" (Schedule.to_string schedule))
    Schedule.table2_grid

let suite =
  [
    qcheck ~count:200 ~name:"JIT == Interp == naive walk (random grid point)"
      seed_gen differential_property;
    quick "full Table II grid on one forest" test_full_grid_one_forest;
  ]
