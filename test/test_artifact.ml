(* Packed predictor artifacts (Tb_lir.Pack + the registry's disk tier).

   The format is only as trustworthy as its tests, so this suite is a
   serialization battery in three movements:

   - round-trip properties: random models x Table II schedules pack,
     unpack to an equal pack whose instantiated predictor is bitwise-equal
     to the directly-JIT'd one, and whose rehydrated layout cross-checks
     clean against the source HIR/MIR (0 T-findings);
   - corruption fuzzing: bad magic, wrong version, flipped bits,
     truncations, header corruption — every mutant must come back as a
     structured A001..A004 error, never an exception or a wrong pack, and
     the registry must fall back to a fresh compile;
   - the two-tier registry: a warm restart against the same cache
     directory serves with zero recompiles and bitwise-identical
     predictions, and the split wall-clock accounting is sane. *)

open Helpers
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Lower = Tb_lir.Lower
module Pack = Tb_lir.Pack
module Layout = Tb_lir.Layout
module Jit = Tb_vm.Jit
module Registry = Tb_serve.Registry
module Artifact = Tb_serve.Artifact
module Validate = Tb_analysis.Validate
module Prng = Tb_util.Prng

let bitwise_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         Array.length x = Array.length y && Array.for_all2 Float.equal x y)
       a b

(* ---------------- round trip ---------------- *)

let random_lowered rng =
  let forest =
    Forest.random
      ~num_trees:(1 + Prng.int rng 6)
      ~max_depth:(1 + Prng.int rng 5)
      ~num_features:(2 + Prng.int rng 6)
      rng
  in
  let grid = Array.of_list Schedule.table2_grid in
  let schedule = grid.(Prng.int rng (Array.length grid)) in
  match Lower.lower forest schedule with
  | lp -> (forest, schedule, lp)
  | exception Invalid_argument _ ->
    (* Array-slab cap on deep tilings: fall back to the default point. *)
    (forest, Schedule.default, Lower.lower forest Schedule.default)

let roundtrip_property seed =
  let rng = Prng.create seed in
  let forest, _schedule, lp = random_lowered rng in
  let pk =
    Pack.of_lower ~model:"m" ~target:"t" ~us_per_row:1.25 lp
  in
  let bytes = Pack.encode pk in
  (* Deterministic encoder: equal packs encode to equal bytes. *)
  if Bytes.compare bytes (Pack.encode pk) <> 0 then
    QCheck2.Test.fail_report "encode is not deterministic";
  let pk' =
    match Pack.decode bytes with
    | Ok pk' -> pk'
    | Error e ->
      QCheck2.Test.fail_reportf "valid artifact rejected: [%s] %s" e.Pack.code
        e.Pack.message
  in
  if not (Pack.equal pk pk') then
    QCheck2.Test.fail_report "decode (encode pk) <> pk";
  (* The rehydrated layout must still agree with the source HIR/MIR: the
     cross-stage validator finds nothing to complain about. *)
  (match Validate.check_lir lp.Lower.hir lp.Lower.mir pk'.Pack.layout with
  | [] -> ()
  | fs ->
    QCheck2.Test.fail_reportf "rehydrated layout has %d T-findings"
      (List.length fs));
  (* And the instantiated predictor is the JIT, bitwise. *)
  let rows = random_rows rng forest.Forest.num_features 16 in
  let direct = Jit.compile_single_thread lp rows in
  let hydrated = Jit.instantiate_single_thread pk' rows in
  if not (bitwise_equal direct hydrated) then
    QCheck2.Test.fail_report "hydrated predictions diverge from the JIT";
  true

(* ---------------- corruption fuzzing ---------------- *)

let fixture_pack () =
  let rng = Prng.create 7 in
  let forest = Forest.random ~num_trees:5 ~max_depth:4 ~num_features:6 rng in
  let lp = Lower.lower forest Schedule.default in
  (forest, Pack.of_lower ~model:"fuzz" ~target:"t" lp)

let expect_error what code bytes =
  match Pack.decode bytes with
  | Ok _ -> Alcotest.failf "%s: decode accepted a corrupt artifact" what
  | Error e ->
    Alcotest.(check string) (what ^ " error code") code e.Pack.code;
    check_bool (what ^ " has a message") true (String.length e.Pack.message > 0)

let test_fuzz_magic_and_version () =
  let _, pk = fixture_pack () in
  let good = Pack.encode pk in
  (* Not even a magic's worth of bytes. *)
  expect_error "empty" "A001" (Bytes.create 0);
  expect_error "three bytes" "A001" (Bytes.sub good 0 3);
  (* Magic right but header truncated. *)
  expect_error "header cut short" "A001" (Bytes.sub good 0 10);
  (* Wrong magic. *)
  let b = Bytes.copy good in
  Bytes.blit_string "JUNK" 0 b 0 4;
  expect_error "bad magic" "A001" b;
  (* A JSON file is not an artifact. *)
  expect_error "json file" "A001" (Bytes.of_string "{ \"model\": \"abalone\" }");
  (* Future format version. *)
  let b = Bytes.copy good in
  Bytes.set_uint16_le b 4 (Pack.format_version + 1);
  expect_error "future version" "A002" b;
  (* Nonzero reserved header bytes (not covered by the payload CRC). *)
  let b = Bytes.copy good in
  Bytes.set_uint16_le b 6 1;
  expect_error "reserved bytes" "A004" b

let test_fuzz_checksum_and_truncation () =
  let _, pk = fixture_pack () in
  let good = Pack.encode pk in
  let n = Bytes.length good in
  (* Any payload bit flip trips the checksum. *)
  let rng = Prng.create 11 in
  for _ = 1 to 32 do
    let b = Bytes.copy good in
    let i = 16 + Prng.int rng (n - 16) in
    Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor (1 lsl Prng.int rng 8));
    expect_error "payload bit flip" "A003" b
  done;
  (* Flipping the stored CRC itself also mismatches. *)
  let b = Bytes.copy good in
  Bytes.set_uint8 b 12 (Bytes.get_uint8 b 12 lxor 1);
  expect_error "crc field flip" "A003" b;
  (* Truncations: the header's declared length no longer fits. *)
  expect_error "payload truncated" "A004" (Bytes.sub good 0 (n - 1));
  expect_error "payload halved" "A004" (Bytes.sub good 0 (16 + ((n - 16) / 2)));
  (* Trailing garbage past the declared payload. *)
  let b = Bytes.cat good (Bytes.make 3 'x') in
  expect_error "trailing garbage" "A004" b;
  (* Corrupt declared length, CRC recomputed to match: structural checks
     must still catch the inconsistency. *)
  let b = Bytes.copy good in
  Bytes.set_int32_le b 8 (Int32.of_int (n - 17));
  Bytes.set_int32_le b 12 (Pack.crc32 b ~pos:16 ~len:(n - 17));
  expect_error "shrunk declared length" "A004" b

(* Seeded mutation storm: decode must be total — every mutant yields a
   structured A00x error or (only when the mutation misses every checked
   byte, which cannot happen for single-bit flips) a valid pack; it never
   raises. *)
let fuzz_storm_property seed =
  let _, pk = fixture_pack () in
  let good = Pack.encode pk in
  let n = Bytes.length good in
  let rng = Prng.create seed in
  let mutant =
    match Prng.int rng 3 with
    | 0 ->
      (* single-bit flip anywhere *)
      let b = Bytes.copy good in
      let i = Prng.int rng n in
      Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor (1 lsl Prng.int rng 8));
      b
    | 1 -> Bytes.sub good 0 (Prng.int rng n)
    | _ ->
      (* random byte stomp over a small window *)
      let b = Bytes.copy good in
      let i = Prng.int rng n in
      let len = min (1 + Prng.int rng 8) (n - i) in
      for j = i to i + len - 1 do
        Bytes.set_uint8 b j (Prng.int rng 256)
      done;
      b
  in
  match Pack.decode mutant with
  | Error e ->
    if not (List.mem e.Pack.code [ "A001"; "A002"; "A003"; "A004" ]) then
      QCheck2.Test.fail_reportf "unregistered error code %s" e.Pack.code;
    let d = Pack.error_to_diagnostic e in
    if d.Tb_diag.Diagnostic.level <> Tb_diag.Diagnostic.Artifact then
      QCheck2.Test.fail_report "diagnostic not at the Artifact level";
    true
  | Ok pk' ->
    (* A mutant that still decodes must be byte-identical to the source
       artifact (e.g. a zero-length truncation "window" stomp that wrote
       back the original bytes). *)
    if not (Pack.equal pk pk') then
      QCheck2.Test.fail_report "corrupt artifact decoded to a different pack";
    true

(* ---------------- the registry's disk tier ---------------- *)

(* A unique empty directory name per call: temp_file reserves the name,
   removing the placeholder leaves it free for Artifact.create to mkdir. *)
let fresh_dir () =
  let f = Filename.temp_file "tb_artifact_test" ".cache" in
  Sys.remove f;
  f

let zoo_registry ~cache_dir seeds =
  let reg = Registry.create ~capacity:16 ~cache_dir () in
  List.iter
    (fun seed ->
      let rng = Prng.create seed in
      let forest =
        Forest.random ~num_trees:4 ~max_depth:4 ~num_features:5 rng
      in
      Registry.register reg ~name:(Printf.sprintf "m%d" seed) forest)
    seeds;
  reg

let test_warm_restart_zero_recompiles () =
  let dir = fresh_dir () in
  let seeds = [ 1; 2; 3 ] in
  let rng = Prng.create 99 in
  let rows = random_rows rng 5 8 in
  (* Cold process: every model pays a compile and writes its artifact. *)
  let cold = zoo_registry ~cache_dir:dir seeds in
  let cold_preds =
    List.map
      (fun seed ->
        let c, prov =
          Registry.compiled cold ~model:(Printf.sprintf "m%d" seed)
            ~schedule:Schedule.default
        in
        check_string
          (Printf.sprintf "m%d cold provenance" seed)
          "compile"
          (Registry.provenance_string prov);
        c.Registry.predict rows)
      seeds
  in
  check_int "cold compiles" 3 (Registry.compile_count cold);
  check_int "cold hydrations" 0 (Registry.hydration_count cold);
  check_bool "no artifact errors" true (Registry.artifact_errors cold = []);
  (* Warm restart: a fresh process over the same directory hydrates
     everything — zero recompiles, bitwise-identical predictions. *)
  let warm = zoo_registry ~cache_dir:dir seeds in
  List.iteri
    (fun i seed ->
      let c, prov =
        Registry.compiled warm ~model:(Printf.sprintf "m%d" seed)
          ~schedule:Schedule.default
      in
      check_string
        (Printf.sprintf "m%d warm provenance" seed)
        "disk"
        (Registry.provenance_string prov);
      check_bool
        (Printf.sprintf "m%d warm predictions bitwise equal" seed)
        true
        (bitwise_equal (List.nth cold_preds i) (c.Registry.predict rows));
      (* Second lookup of the same model is an in-memory hit. *)
      let _, prov2 =
        Registry.compiled warm ~model:(Printf.sprintf "m%d" seed)
          ~schedule:Schedule.default
      in
      check_string
        (Printf.sprintf "m%d repeat provenance" seed)
        "hit"
        (Registry.provenance_string prov2))
    seeds;
  check_int "warm restart recompiles nothing" 0 (Registry.compile_count warm);
  check_int "warm hydrations" 3 (Registry.hydration_count warm)

let test_corrupt_artifact_falls_back () =
  let dir = fresh_dir () in
  let reg = zoo_registry ~cache_dir:dir [ 5 ] in
  let c, _ = Registry.compiled reg ~model:"m5" ~schedule:Schedule.default in
  let rng = Prng.create 13 in
  let rows = random_rows rng 5 8 in
  let want = c.Registry.predict rows in
  (* Flip one payload byte of the stored artifact. *)
  let file =
    match Sys.readdir dir with
    | [| f |] -> Filename.concat dir f
    | files -> Alcotest.failf "expected one artifact, found %d" (Array.length files)
  in
  let bytes =
    match Artifact.read_file file with
    | Ok b -> b
    | Error m -> Alcotest.failf "read_file: %s" m
  in
  Bytes.set_uint8 bytes 20 (Bytes.get_uint8 bytes 20 lxor 4);
  (match Artifact.write_file file bytes with
  | Ok () -> ()
  | Error m -> Alcotest.failf "write_file: %s" m);
  (* A fresh process must reject the corrupt artifact with a structured
     error, fall back to a fresh compile, and serve correct predictions. *)
  let warm = zoo_registry ~cache_dir:dir [ 5 ] in
  let c2, prov = Registry.compiled warm ~model:"m5" ~schedule:Schedule.default in
  check_string "corrupt artifact forces a compile" "compile"
    (Registry.provenance_string prov);
  check_int "fallback compile counted" 1 (Registry.compile_count warm);
  (match Registry.artifact_errors warm with
  | [ (model, what) ] ->
    check_string "error names the model" "m5" model;
    check_bool "error is a structured A003 decode rejection" true
      (String.length what >= 11
      && String.sub what 0 7 = "decode["
      && String.sub what 7 4 = "A003")
  | errs -> Alcotest.failf "expected one artifact error, got %d" (List.length errs));
  check_bool "fallback predictions bitwise equal" true
    (bitwise_equal want (c2.Registry.predict rows));
  (* The fallback compile overwrote the corrupt file: the next restart
     hydrates cleanly again. *)
  let healed = zoo_registry ~cache_dir:dir [ 5 ] in
  let _, prov3 = Registry.compiled healed ~model:"m5" ~schedule:Schedule.default in
  check_string "overwritten artifact hydrates" "disk"
    (Registry.provenance_string prov3);
  check_bool "healed run reports no artifact errors" true
    (Registry.artifact_errors healed = [])

let test_wall_cost_split () =
  let dir = fresh_dir () in
  let cold = zoo_registry ~cache_dir:dir [ 21 ] in
  let c, _ = Registry.compiled cold ~model:"m21" ~schedule:Schedule.default in
  check_bool "instantiate cost is part of the compile cost" true
    (c.Registry.wall_instantiate_us >= 0.0
    && c.Registry.wall_instantiate_us <= c.Registry.wall_compile_us);
  check_bool "modeled hydration is cheaper than a modeled compile" true
    (c.Registry.hydrate_us < c.Registry.compile_us);
  check_bool "modeled hydration is >= 5x cheaper" true
    (c.Registry.compile_us /. c.Registry.hydrate_us >= 5.0);
  let warm = zoo_registry ~cache_dir:dir [ 21 ] in
  let h, prov = Registry.compiled warm ~model:"m21" ~schedule:Schedule.default in
  check_string "disk provenance" "disk" (Registry.provenance_string prov);
  check_bool "hydration wall cost also splits" true
    (h.Registry.wall_instantiate_us >= 0.0
    && h.Registry.wall_instantiate_us <= h.Registry.wall_compile_us);
  (* The artifact metadata round-trips the uncalibrated service model. *)
  check_bool "hydrated service model positive" true (h.Registry.us_per_row > 0.0);
  check_float "hydrated service model matches the compile's" c.Registry.us_per_row
    h.Registry.us_per_row

(* ---------------- golden artifact fixture ---------------- *)

let golden_dir =
  if Sys.file_exists "golden" then "golden" else "test/golden"

let models_dir =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [ "_models"; "../_models"; "../../_models"; "../../../_models" ]

let test_golden_artifact_byte_stability () =
  let path = Filename.concat golden_dir "abalone.tbpack" in
  let fixture =
    match Artifact.read_file path with
    | Ok b -> b
    | Error m -> Alcotest.failf "missing golden artifact (%s)" m
  in
  (* The checked-in artifact decodes under the current decoder... *)
  let pk =
    match Pack.decode fixture with
    | Ok pk -> pk
    | Error e ->
      Alcotest.failf
        "golden artifact no longer decodes ([%s] %s) — the wire format \
         changed; bump Pack.format_version and regenerate with gen_golden"
        e.Pack.code e.Pack.message
  in
  check_string "golden model name" "abalone" pk.Pack.meta.Pack.model;
  (* ... and re-encodes to the exact bytes on disk (byte stability). *)
  check_bool "golden artifact re-encodes byte-identically" true
    (Bytes.compare fixture (Pack.encode pk) = 0);
  (* With the model cache present, packing the model afresh must
     reproduce the fixture bit for bit — otherwise the format (or the
     lowering) changed and on-disk caches would silently orphan. *)
  match models_dir with
  | None ->
    Printf.printf "skipped repack: no _models cache found from %s\n"
      (Sys.getcwd ())
  | Some dir ->
    let model_path = Filename.concat dir "abalone.json" in
    if not (Sys.file_exists model_path) then
      Printf.printf "skipped repack: %s absent\n" model_path
    else begin
      let forest = Tb_model.Serialize.of_file model_path in
      let lp = Lower.lower forest Schedule.default in
      let repacked = Pack.of_lower ~model:"abalone" lp in
      check_bool "freshly packed abalone matches the fixture" true
        (Bytes.compare fixture (Pack.encode repacked) = 0)
    end

(* The quantized fixture pins the v2 quant metadata block and the
   narrow-layout serialization the same way the float fixture pins the
   base format: decode, re-encode byte-identically, and (with the model
   cache present) reproduce it from scratch through certify -> lower
   ~quant -> pack. *)
let test_golden_quant_artifact_byte_stability () =
  let path = Filename.concat golden_dir "abalone-int16.tbpack" in
  let fixture =
    match Artifact.read_file path with
    | Ok b -> b
    | Error m -> Alcotest.failf "missing golden quant artifact (%s)" m
  in
  let pk =
    match Pack.decode fixture with
    | Ok pk -> pk
    | Error e ->
      Alcotest.failf
        "golden quant artifact no longer decodes ([%s] %s) — the wire \
         format changed; bump Pack.format_version and regenerate with \
         gen_golden"
        e.Pack.code e.Pack.message
  in
  check_string "golden quant model name" "abalone" pk.Pack.meta.Pack.model;
  (match pk.Pack.quant with
  | None -> Alcotest.fail "golden quant artifact lost its quant block"
  | Some q ->
    check_int "golden quant resident_k" 2 q.Pack.resident_k;
    check_float "golden quant tolerance" 0.5 q.Pack.tolerance);
  (match pk.Pack.layout.Layout.quant with
  | None -> Alcotest.fail "golden quant artifact rehydrated a float layout"
  | Some s -> check_int "golden quant qbits" 16 s.Layout.qbits);
  check_bool "golden quant artifact re-encodes byte-identically" true
    (Bytes.compare fixture (Pack.encode pk) = 0);
  match models_dir with
  | None -> ()
  | Some dir ->
    let model_path = Filename.concat dir "abalone.json" in
    if Sys.file_exists model_path then begin
      let forest = Tb_model.Serialize.of_file model_path in
      let module Numeric = Tb_analysis.Numeric in
      let cert = Numeric.certify ~width:Numeric.I16 forest in
      let qspec = Tb_core.Treebeard.qspec_of_plan cert.Numeric.plan in
      let repacked =
        Pack.of_lower ~model:"abalone"
          ~quant:
            {
              Pack.resident_k = 2;
              dev_bound = Array.copy cert.Numeric.dev_bound;
              tolerance = 0.5;
            }
          (Lower.lower ~quant:qspec forest Schedule.default)
      in
      check_bool "freshly packed quantized abalone matches the fixture" true
        (Bytes.compare fixture (Pack.encode repacked) = 0)
    end

let suite =
  [
    qcheck ~count:60
      ~name:"pack round trip: equal pack, clean validation, bitwise predictions"
      seed_gen roundtrip_property;
    quick "fuzz: magic, version, reserved header" test_fuzz_magic_and_version;
    quick "fuzz: checksum + truncation" test_fuzz_checksum_and_truncation;
    qcheck ~count:200 ~name:"fuzz storm: decode is total, errors structured"
      seed_gen fuzz_storm_property;
    quick "warm restart: zero recompiles, bitwise predictions"
      test_warm_restart_zero_recompiles;
    quick "corrupt artifact: structured fallback + self-heal"
      test_corrupt_artifact_falls_back;
    quick "wall cost split + modeled hydration discount" test_wall_cost_split;
    quick "golden artifact byte stability" test_golden_artifact_byte_stability;
    quick "golden quantized artifact byte stability"
      test_golden_quant_artifact_byte_stability;
  ]
