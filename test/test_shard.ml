(* Sharded serving: consistent-hash routing stability, EDF dispatch,
   graded shedding, exact metrics merging and fleet-level determinism +
   artifact shipping. *)

open Helpers
module Prng = Tb_util.Prng
module H = Tb_util.Stats.Histogram
module Schedule = Tb_hir.Schedule
module Forest = Tb_model.Forest
module Metrics = Tb_serve.Metrics
module Registry = Tb_serve.Registry
module Router = Tb_serve.Router
module Runtime = Tb_serve.Runtime
module Scheduler = Tb_serve.Scheduler
module Simulate = Tb_serve.Simulate

(* ---------------- router ---------------- *)

let test_router_strings () =
  check_bool "hash" true (Router.policy_of_string "hash" = Ok Router.Hash);
  check_bool "affinity" true
    (Router.policy_of_string "Affinity" = Ok Router.Affinity);
  check_bool "junk rejected" true
    (match Router.policy_of_string "random" with
    | Error _ -> true
    | Ok _ -> false)

let test_router_routes_live () =
  List.iter
    (fun policy ->
      let r = Router.of_shard_ids policy [ 1; 4; 9 ] in
      for i = 0 to 50 do
        let sid = Router.route r (Printf.sprintf "model-%d" i) in
        check_bool "routes to a live shard" true (List.mem sid [ 1; 4; 9 ])
      done)
    [ Router.Hash; Router.Affinity ]

(* The affinity property the ISSUE pins down: growing the ring only moves
   keys onto the new shard, shrinking it only moves the removed shard's
   keys — every other model keeps its shard. *)
let affinity_stability_property seed =
  let rng = Prng.create seed in
  let shards = 1 + Prng.int rng 7 in
  let models =
    List.init (8 + Prng.int rng 40) (fun i ->
        Printf.sprintf "m%d-%d" i (Prng.int rng 1_000_000))
  in
  let r = Router.create Router.Affinity ~shards in
  let grown = Router.add_shard r shards in
  List.iter
    (fun m ->
      let before = Router.route r m and after = Router.route grown m in
      if before <> after && after <> shards then
        QCheck2.Test.fail_reportf
          "add_shard moved %s from %d to %d (not the new shard %d)" m before
          after shards)
    models;
  (* Removing what we added restores every assignment bit for bit. *)
  let shrunk = Router.remove_shard grown shards in
  List.iter
    (fun m ->
      if Router.route shrunk m <> Router.route r m then
        QCheck2.Test.fail_reportf "remove_shard did not restore %s" m)
    models;
  (* Removing a shard only moves the removed shard's models. *)
  (if shards > 1 then
     let victim = Prng.int rng shards in
     let dropped = Router.remove_shard r victim in
     List.iter
       (fun m ->
         let before = Router.route r m in
         if before <> victim && Router.route dropped m <> before then
           QCheck2.Test.fail_reportf
             "remove_shard %d moved %s which lived on %d" victim m before)
       models);
  true

(* Hash-mod routing is balanced but unstable: growing the fleet remaps
   keys to shards other than the new one (the contrast that motivates
   affinity routing). Checked on a fixed seed: the property is about the
   policy, not about every draw. *)
let test_hash_routing_unstable () =
  let models = List.init 64 (fun i -> Printf.sprintf "model-%d" i) in
  let r3 = Router.create Router.Hash ~shards:3 in
  let r4 = Router.add_shard r3 3 in
  let moved_elsewhere =
    List.exists
      (fun m ->
        let b = Router.route r3 m and a = Router.route r4 m in
        b <> a && a <> 3)
      models
  in
  check_bool "mod-hash remaps keys onto old shards" true moved_elsewhere

(* ---------------- scheduler ---------------- *)

let test_edf_preempts_fifo_order () =
  let fifo = Scheduler.create Scheduler.Fifo in
  Scheduler.push fifo ~deadline_us:1000.0 "loose";
  Scheduler.push fifo ~deadline_us:100.0 "tight";
  Alcotest.(check (option string))
    "fifo serves admission order" (Some "loose") (Scheduler.pop fifo);
  let edf = Scheduler.create Scheduler.Edf in
  Scheduler.push edf ~deadline_us:1000.0 "loose";
  Scheduler.push edf ~deadline_us:100.0 "tight";
  Alcotest.(check (option string))
    "edf serves the tight deadline first" (Some "tight") (Scheduler.pop edf);
  Alcotest.(check (option string))
    "then the loose one" (Some "loose") (Scheduler.pop edf);
  Alcotest.(check (option string)) "empty" None (Scheduler.pop edf)

let test_scheduler_shed_last () =
  let edf = Scheduler.create Scheduler.Edf in
  Scheduler.push edf ~deadline_us:500.0 "mid";
  Scheduler.push edf ~deadline_us:9000.0 "latest";
  Scheduler.push edf ~deadline_us:100.0 "tight";
  Alcotest.(check (option string))
    "edf sheds the latest deadline" (Some "latest") (Scheduler.shed_last edf);
  check_int "two left" 2 (Scheduler.length edf);
  let fifo = Scheduler.create Scheduler.Fifo in
  Scheduler.push fifo ~deadline_us:1.0 "old";
  Scheduler.push fifo ~deadline_us:2.0 "new";
  Alcotest.(check (option string))
    "fifo sheds the newest admission" (Some "new") (Scheduler.shed_last fifo)

(* Engine-level EDF: worker busy, one loose and one tight batch pending —
   FIFO dispatches the older loose batch next, EDF the tight one. *)
let edf_registry seed =
  let rng = Prng.create seed in
  let reg = Registry.create () in
  Registry.register reg ~name:"loose"
    (Forest.random ~num_trees:5 ~max_depth:4 ~num_features:6 rng);
  Registry.register reg ~name:"tight"
    (Forest.random ~num_trees:5 ~max_depth:4 ~num_features:6 rng);
  reg

let edf_requests rng =
  (* batch_max = 1 turns each request into its own batch at arrival; the
     first loose batch pays its compile on the single worker, so both
     later batches are pending when the worker frees. *)
  [|
    { Runtime.id = 0; model = "loose"; row = random_row rng 6; arrival_us = 0.0 };
    { Runtime.id = 1; model = "loose"; row = random_row rng 6; arrival_us = 1.0 };
    { Runtime.id = 2; model = "tight"; row = random_row rng 6; arrival_us = 2.0 };
  |]

let test_edf_preempts_in_engine () =
  let dispatch_models scheduling =
    let reg = edf_registry 51 in
    let rng = Prng.create 52 in
    let config =
      {
        Runtime.default_config with
        Runtime.batch_max = 1;
        workers = 1;
        scheduling;
        slo_us = [ ("tight", 500.0) ];
      }
    in
    let r =
      Runtime.run ~config ~schedule:Schedule.default reg (edf_requests rng)
    in
    check_int "all served" 3 r.Runtime.metrics.Metrics.completed;
    check_int "serve == jit" 0 r.Runtime.equivalence_failures;
    List.map
      (fun (b : Runtime.batch_exec) -> b.Runtime.requests.(0).Runtime.model)
      r.Runtime.batches
  in
  Alcotest.(check (list string))
    "fifo keeps formation order"
    [ "loose"; "loose"; "tight" ]
    (dispatch_models Scheduler.Fifo);
  Alcotest.(check (list string))
    "edf jumps the tight deadline ahead"
    [ "loose"; "tight"; "loose" ]
    (dispatch_models Scheduler.Edf)

(* SLO attainment feeds the metrics: the tight model's completions are
   scored against its budget under both policies, and EDF's reordering
   can only help it. *)
let test_edf_slo_attainment () =
  let attainment scheduling =
    let reg = edf_registry 53 in
    let rng = Prng.create 54 in
    let config =
      {
        Runtime.default_config with
        Runtime.batch_max = 1;
        workers = 1;
        scheduling;
        slo_us = [ ("tight", 500.0) ];
      }
    in
    let r =
      Runtime.run ~config ~schedule:Schedule.default reg (edf_requests rng)
    in
    match Metrics.slo_attainment r.Runtime.metrics "tight" with
    | Some a -> a
    | None -> Alcotest.fail "tight model recorded no scored completions"
  in
  let fifo = attainment Scheduler.Fifo and edf = attainment Scheduler.Edf in
  check_bool "edf attainment >= fifo" true (edf >= fifo)

(* ---------------- graded shedding ---------------- *)

let test_graded_shed_prefers_loose () =
  (* One worker, glacial queue drain, shedding from the first queued
     request: the loose class is turned away while the tight class keeps
     being admitted until the ladder's top step. *)
  let reg = edf_registry 55 in
  let rng = Prng.create 56 in
  let n = 400 in
  let requests =
    Array.init n (fun i ->
        {
          Runtime.id = i;
          model = (if i mod 2 = 0 then "loose" else "tight");
          row = random_row rng 6;
          arrival_us = float_of_int i *. 0.5;
        })
  in
  let config =
    {
      Runtime.default_config with
      Runtime.queue_capacity = 16;
      batch_max = 4;
      workers = 1;
      scheduling = Scheduler.Edf;
      slo_us = [ ("tight", 500.0); ("loose", 50_000.0) ];
      shed_lo = 0.25;
      shed_hi = 0.75;
    }
  in
  let r = Runtime.run ~config ~schedule:Schedule.default reg requests in
  let m = r.Runtime.metrics in
  check_bool "ladder shed something" true (m.Metrics.shed_admission > 0);
  check_int "sheds are counted as rejects too" m.Metrics.arrivals
    (m.Metrics.admitted + m.Metrics.rejected);
  let shed_of name =
    List.length
      (List.filter
         (fun (req : Runtime.request) -> req.Runtime.model = name)
         r.Runtime.rejects)
  in
  check_bool "loose class shed at least as hard as tight" true
    (shed_of "loose" >= shed_of "tight")

(* ---------------- metrics merge ---------------- *)

let test_metrics_merge_exact () =
  (* Two shards' histograms merge exactly: the fleet view equals one
     metrics object fed every sample, because geometric buckets make
     bucket-wise addition lossless. *)
  let a = Metrics.create ()
  and b = Metrics.create ()
  and whole = Metrics.create () in
  let rng = Prng.create 61 in
  for i = 0 to 199 do
    let arrival = float_of_int i in
    let start = arrival +. (1.0 +. Prng.float rng 50.0) in
    let finish = start +. (1.0 +. Prng.float rng 400.0) in
    let part = if i mod 2 = 0 then a else b in
    let slo = Some ("m", 300.0) in
    Metrics.record_completion ?slo part ~arrival_us:arrival ~start_us:start
      ~finish_us:finish;
    Metrics.record_completion ?slo whole ~arrival_us:arrival ~start_us:start
      ~finish_us:finish
  done;
  let merged = Metrics.merge [ a; b ] in
  List.iter
    (fun (label, pick) ->
      let hm : H.t = pick merged and hw : H.t = pick whole in
      check_int (label ^ " count") (H.count hw) (H.count hm);
      List.iter
        (fun q ->
          check_float
            (Printf.sprintf "%s q%.2f" label q)
            (H.quantile hw q) (H.quantile hm q))
        [ 0.5; 0.95; 0.99 ])
    [
      ("total", fun (m : Metrics.t) -> m.Metrics.total_us);
      ("queue_wait", fun (m : Metrics.t) -> m.Metrics.queue_wait_us);
      ("service", fun (m : Metrics.t) -> m.Metrics.service_us);
    ];
  check_int "completed adds" whole.Metrics.completed merged.Metrics.completed;
  check_float "makespan is the max" whole.Metrics.makespan_us
    merged.Metrics.makespan_us;
  check_bool "slo cells add" true
    (Metrics.slo_attainment merged "m" = Metrics.slo_attainment whole "m")

(* ---------------- fleet ---------------- *)

let fleet_models rng =
  List.map
    (fun name ->
      {
        Simulate.name;
        forest = Forest.random ~num_trees:5 ~max_depth:4 ~num_features:6 rng;
        profiles = None;
        pool = random_rows rng 6 24;
        weight = 1;
        slo_us = None;
      })
    [ "alpha"; "beta"; "gamma"; "delta"; "epsilon" ]

let fleet_config ?cache_dir ~shards () =
  {
    Simulate.default_config with
    Simulate.num_requests = 300;
    popularity = Simulate.Zipf 1.1;
    shards;
    routing = Router.Affinity;
    cache_dir;
  }

let test_fleet_deterministic_and_equivalent () =
  let report () =
    let rng = Prng.create 71 in
    let models = fleet_models rng in
    let fr = Simulate.run_fleet (fleet_config ~shards:3 ()) models in
    check_int "serve == jit on every shard" 0
      fr.Simulate.fleet.Runtime.fleet_equivalence_failures;
    check_int "three shards reported" 3
      (List.length fr.Simulate.fleet.Runtime.shard_results);
    Tb_util.Json.to_string ~indent:true
      (Simulate.fleet_report_to_json ~virtual_only:true fr)
  in
  check_string "byte-identical fleet report" (report ()) (report ())

let test_fleet_covers_every_request () =
  let rng = Prng.create 72 in
  let models = fleet_models rng in
  let fr = Simulate.run_fleet (fleet_config ~shards:4 ()) models in
  let f = fr.Simulate.fleet in
  let served =
    Array.fold_left
      (fun a o -> if o <> None then a + 1 else a)
      0 f.Runtime.fleet_outputs
  in
  check_int "served + rejected = trace" 300
    (served + List.length f.Runtime.fleet_rejects);
  (* The fleet metrics are the exact merge of the shard metrics. *)
  let shard_completed =
    List.fold_left
      (fun a (_, (r : Runtime.result)) ->
        a + r.Runtime.metrics.Metrics.completed)
      0 f.Runtime.shard_results
  in
  check_int "merged completions" shard_completed
    f.Runtime.fleet_metrics.Metrics.completed

let fresh_dir () =
  let f = Filename.temp_file "tb_shard_test" ".cache" in
  Sys.remove f;
  f

let test_fleet_artifact_shipping () =
  (* A fleet restart over the shared artifact store: the second fleet's
     registries never compiled anything, so every dispatch hydrates a
     foreign artifact — zero recompiles, bitwise-identical outputs. *)
  let dir = fresh_dir () in
  let run () =
    let rng = Prng.create 73 in
    let models = fleet_models rng in
    Simulate.run_fleet (fleet_config ~cache_dir:dir ~shards:3 ()) models
  in
  let cold = run () in
  check_bool "cold fleet compiled" true
    (cold.Simulate.fleet.Runtime.fleet_compiles > 0);
  let warm = run () in
  check_int "warm fleet recompiles nothing" 0
    warm.Simulate.fleet.Runtime.fleet_compiles;
  check_bool "warm fleet hydrates foreign artifacts" true
    (warm.Simulate.fleet.Runtime.fleet_foreign_hydrations > 0);
  check_bool "bitwise-identical outputs across the restart" true
    (cold.Simulate.fleet.Runtime.fleet_outputs
    = warm.Simulate.fleet.Runtime.fleet_outputs)

let test_fleet_reshard_rehydrates () =
  (* Route change with surviving registries: a model moved by add_shard
     hydrates on its new shard from the shared store instead of
     recompiling. *)
  let dir = fresh_dir () in
  let rng = Prng.create 74 in
  let models = fleet_models rng in
  let config = fleet_config ~cache_dir:dir ~shards:3 () in
  let mk_reg () =
    let reg = Registry.create ~cache_dir:dir () in
    List.iter
      (fun (m : Simulate.model_spec) ->
        Registry.register reg ~name:m.Simulate.name ~sample_rows:m.Simulate.pool
          m.Simulate.forest)
      models;
    reg
  in
  let trace =
    Simulate.gen_requests (Prng.create config.Simulate.seed) config models
  in
  let router3 = Router.create Router.Affinity ~shards:3 in
  let regs3 = List.map (fun sid -> (sid, mk_reg ())) (Router.shard_ids router3) in
  let cold =
    Runtime.run_fleet ~schedule:Schedule.default ~router:router3 regs3 trace
  in
  check_int "cold fleet equivalence" 0 cold.Runtime.fleet_equivalence_failures;
  let compiles_before =
    List.fold_left (fun a (_, r) -> a + Registry.compile_count r) 0 regs3
  in
  let router4 = Router.add_shard router3 3 in
  let regs4 = regs3 @ [ (3, mk_reg ()) ] in
  let warm =
    Runtime.run_fleet ~schedule:Schedule.default ~router:router4 regs4 trace
  in
  let compiles_after =
    List.fold_left (fun a (_, r) -> a + Registry.compile_count r) 0 regs4
  in
  check_int "route change recompiles nothing" compiles_before compiles_after;
  check_int "resharded fleet equivalence" 0
    warm.Runtime.fleet_equivalence_failures;
  check_bool "same outputs after the reshard" true
    (cold.Runtime.fleet_outputs = warm.Runtime.fleet_outputs)

let suite =
  [
    quick "router policy strings" test_router_strings;
    quick "routing lands on live shards" test_router_routes_live;
    qcheck ~count:60 ~name:"consistent hashing stable under add/remove"
      seed_gen affinity_stability_property;
    quick "mod-hash routing is unstable" test_hash_routing_unstable;
    quick "edf pops tight deadline before older loose" test_edf_preempts_fifo_order;
    quick "shed_last drops the least urgent" test_scheduler_shed_last;
    quick "edf preempts fifo-older loose batch in the engine"
      test_edf_preempts_in_engine;
    quick "edf slo attainment >= fifo" test_edf_slo_attainment;
    quick "graded shedding turns away loose classes first"
      test_graded_shed_prefers_loose;
    quick "metrics merge is exact" test_metrics_merge_exact;
    quick "fleet report byte-deterministic" test_fleet_deterministic_and_equivalent;
    quick "fleet covers the whole trace" test_fleet_covers_every_request;
    quick "fleet warm restart ships artifacts" test_fleet_artifact_shipping;
    quick "reshard hydrates moved models without recompiling"
      test_fleet_reshard_rehydrates;
  ]
