(* The integer fast path, end to end.

   The quantized backend's contract is *bitwise* agreement with the
   certified integer evaluator ({!Numeric.qpredict_raw}) on every row —
   ties, saturated inputs and dead zones included — because both sides
   quantize identically and integer addition commutes exactly. The
   properties here replay that contract at each layer: the quantized
   lowering's reference evaluation, the packed-artifact JIT (memory-only
   and register-resident prefix), and the Reg_ir resident programs under
   the interpreter. Divergence from the *float* path is only allowed on
   rows inside a rounding dead zone, and elsewhere must stay within the
   certificate's proved deviation bound. *)

open Helpers
module Prng = Tb_util.Prng
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Pack = Tb_lir.Pack
module Reg_codegen = Tb_lir.Reg_codegen
module Jit = Tb_vm.Jit
module Interp = Tb_vm.Interp
module Numeric = Tb_analysis.Numeric
module Validate = Tb_analysis.Validate
module Treebeard = Tb_core.Treebeard
module D = Tb_diag.Diagnostic

let grid = Array.of_list Schedule.table2_grid
let bits = Int64.bits_of_float

let bitwise_eq a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> bits x = bits y) a b

(* N002 (threshold collisions) does not refute a certificate — dead-zone
   routing divergence is permitted by contract. Anything else does. *)
let refuted (cert : Numeric.certificate) =
  List.exists (fun d -> d.D.code <> "N002") cert.Numeric.findings

let qspec_of_plan (p : Numeric.plan) =
  {
    Layout.qbits = Numeric.bits p.Numeric.width;
    q_max = p.Numeric.q_max;
    feature_exp = Array.copy p.Numeric.feature_exp;
    leaf_exp = p.Numeric.leaf_exp;
  }

let pack_quant (cert : Numeric.certificate) k =
  {
    Pack.resident_k = k;
    dev_bound = Array.copy cert.Numeric.dev_bound;
    tolerance = cert.Numeric.plan.Numeric.tolerance;
  }

(* Ordinary rows plus scaled-up ones that exercise input saturation
   against the padded (infinite-threshold) dummy lanes. *)
let probe_rows rng num_features =
  Array.append
    (random_rows rng num_features 10)
    (Array.map
       (Array.map (fun x -> 1e3 *. x))
       (random_rows rng num_features 2))

(* Random model with a *sound* plan — only N001 (overflow) makes the
   quantized execution itself unsound; excess deviation (N003), flip risk
   (N004) and collisions (N002) don't invalidate the bitwise contract or
   the proved dev_bound, so such models stay in the sample. A huge
   tolerance keeps N003 from firing and maximizes coverage. *)
let certified_model rng =
  let forest = Test_numeric.random_model rng in
  let width = if Prng.int rng 2 = 0 then Numeric.I8 else Numeric.I16 in
  let cert = Numeric.certify ~tolerance:1e12 ~width forest in
  if List.exists (fun d -> d.D.code = "N001") cert.Numeric.findings then None
  else Some (forest, cert)

(* ---------------- bitwise differential properties ---------------- *)

let jit_bitwise_property seed =
  let rng = Prng.create seed in
  match certified_model rng with
  | None -> true
  | Some (forest, cert) ->
    let plan = cert.Numeric.plan in
    let qm = Numeric.quantize plan forest in
    let schedule = grid.(Prng.int rng (Array.length grid)) in
    let lowered = Lower.lower ~quant:(qspec_of_plan plan) forest schedule in
    let rows = probe_rows rng forest.Forest.num_features in
    let want = Array.map (Numeric.qpredict_raw qm) rows in
    (* The lowering's own reference evaluation... *)
    Array.iteri
      (fun i row ->
        let got = Lower.reference_qpredict lowered row in
        if not (bitwise_eq got want.(i)) then
          QCheck2.Test.fail_reportf
            "reference_qpredict diverged from qpredict_raw on row %d" i)
      rows;
    (* ... and the JIT over the packed artifact, with and without a
       register-resident prefix. *)
    let instantiate k =
      Jit.instantiate_single_thread
        (Pack.of_lower ~quant:(pack_quant cert k) lowered)
    in
    let got0 = instantiate 0 rows in
    let got2 = instantiate 2 rows in
    Array.iteri
      (fun i w ->
        if not (bitwise_eq got0.(i) w) then
          QCheck2.Test.fail_reportf "memory-only quantized JIT diverged on row %d"
            i;
        if not (bitwise_eq got2.(i) w) then
          QCheck2.Test.fail_reportf "resident-prefix JIT diverged on row %d" i)
      want;
    true

let resident_interp_property seed =
  let rng = Prng.create seed in
  match certified_model rng with
  | None -> true
  | Some (forest, cert) ->
    let schedule = grid.(Prng.int rng (Array.length grid)) in
    let lowered =
      Lower.lower ~quant:(qspec_of_plan cert.Numeric.plan) forest schedule
    in
    let lay = lowered.Lower.layout in
    let spec = Option.get lay.Layout.quant in
    let k = 1 + Prng.int rng 3 in
    let rows = random_rows rng forest.Forest.num_features 6 in
    let num_trees = Array.length lay.Layout.tree_root in
    for tree = 0 to num_trees - 1 do
      let p = Reg_codegen.resident_program lay ~k ~tree in
      Array.iter
        (fun row ->
          let qrow = Layout.quantize_row spec row in
          let got = Interp.run_walk p lowered ~tree ~row:qrow in
          let want = Layout.walk lay ~tree qrow in
          if bits got <> bits want then
            QCheck2.Test.fail_reportf
              "resident program (k=%d) diverged from Layout.walk on tree %d" k
              tree)
        rows
    done;
    true

(* Quantized-vs-float contract: outside every dead zone the dequantized
   output stays within the proved per-class deviation bound of the float
   reference; dead-zone rows are exempt (routing may differ). *)
let deviation_contract_property seed =
  let rng = Prng.create seed in
  match certified_model rng with
  | None -> true
  | Some (forest, cert) ->
    let plan = cert.Numeric.plan in
    let qm = Numeric.quantize plan forest in
    let rows = random_rows rng forest.Forest.num_features 12 in
    Array.iter
      (fun row ->
        if not (Numeric.dead_zone_row plan forest row) then begin
          let q = Numeric.qpredict_raw qm row in
          let f = Numeric.reference_raw forest row in
          Array.iteri
            (fun c qv ->
              let dev = Float.abs (qv -. f.(c)) in
              if dev > cert.Numeric.dev_bound.(c) then
                QCheck2.Test.fail_reportf
                  "class %d deviation %g exceeds proved bound %g" c dev
                  cert.Numeric.dev_bound.(c))
            q
        end)
      rows;
    true

(* ---------------- pack round-trip ---------------- *)

(* Dyadic thresholds and leaves: quantization is exact, so the
   certificate is clean at I16 and the proved deviation bound is 0. *)
let clean_forest () =
  let node f t l r =
    Tree.Node
      { feature = f; threshold = t; left = Tree.Leaf l; right = Tree.Leaf r }
  in
  Forest.make ~name:"quant-clean" ~base_score:0.25 ~task:Forest.Regression
    ~num_features:3
    [|
      node 0 0.5 1.0 (-0.5);
      node 1 (-0.25) 0.75 2.0;
      node 2 1.5 (-1.0) 0.5;
    |]

let quantized_lowering ?(schedule = Schedule.default) () =
  let forest = clean_forest () in
  let cert = Numeric.certify ~width:Numeric.I16 forest in
  Alcotest.(check bool) "clean model certifies" true (not (refuted cert));
  (forest, cert, Lower.lower ~quant:(qspec_of_plan cert.Numeric.plan) forest schedule)

let test_pack_roundtrip () =
  let _, cert, lowered = quantized_lowering () in
  let pack = Pack.of_lower ~model:"quant-clean" ~quant:(pack_quant cert 1) lowered in
  match Pack.decode (Pack.encode pack) with
  | Error e -> Alcotest.failf "decode failed: %s: %s" e.Pack.code e.Pack.message
  | Ok got ->
    Alcotest.(check bool) "round-trips" true (Pack.equal pack got);
    let q = Option.get got.Pack.quant in
    check_int "resident_k survives" 1 q.Pack.resident_k;
    check_float "tolerance survives" cert.Numeric.plan.Numeric.tolerance
      q.Pack.tolerance;
    let spec = Option.get got.Pack.layout.Layout.quant in
    check_int "qbits survives" 16 spec.Layout.qbits

let test_pack_mismatch_raises () =
  let forest, cert, lowered = quantized_lowering () in
  let float_lowered = Lower.lower forest Schedule.default in
  let raises f =
    match f () with
    | (_ : Pack.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "quant metadata on a float lowering" true
    (raises (fun () -> Pack.of_lower ~quant:(pack_quant cert 0) float_lowered));
  Alcotest.(check bool) "quantized lowering without metadata" true
    (raises (fun () -> Pack.of_lower lowered))

let test_float_pack_has_no_quant_block () =
  let forest, _, _ = quantized_lowering () in
  let lowered = Lower.lower forest Schedule.default in
  let pack = Pack.of_lower lowered in
  match Pack.decode (Pack.encode pack) with
  | Error e -> Alcotest.failf "decode failed: %s" e.Pack.message
  | Ok got ->
    Alcotest.(check bool) "no quant metadata" true (got.Pack.quant = None);
    Alcotest.(check bool) "no quantized layout" true
      (got.Pack.layout.Layout.quant = None)

(* ---------------- the compile API ---------------- *)

let test_make_int16 () =
  let forest = clean_forest () in
  let t =
    Treebeard.make
      ~precision:
        (`Quantized
           { Treebeard.bits = `I16; tolerance = Numeric.default_tolerance })
      (`Forest forest)
  in
  Alcotest.(check string) "tier" "int16" (Treebeard.tier_to_string t.Treebeard.tier);
  Alcotest.(check bool) "certificate present" true
    (t.Treebeard.certificate <> None);
  Alcotest.(check bool) "no fallback diagnostics" true
    (t.Treebeard.precision_diags = []);
  Alcotest.(check bool) "resident depth within cap" true
    (t.Treebeard.resident_k >= 0 && t.Treebeard.resident_k <= 3);
  let cert = Option.get t.Treebeard.certificate in
  let qm = Numeric.quantize cert.Numeric.plan forest in
  let rng = Prng.create 41 in
  let rows = probe_rows rng forest.Forest.num_features in
  let got = Treebeard.predict_forest t rows in
  Array.iteri
    (fun i row ->
      let want = Numeric.qpredict_raw qm row in
      if not (bitwise_eq got.(i) want) then
        Alcotest.failf "quantized compile diverged from qpredict_raw on row %d"
          i)
    rows

let test_make_fallback () =
  (* 0.1 is not dyadic, so the proved deviation bound is positive and an
     impossible tolerance must refute the plan (N003) and degrade the
     compile to the float tier. *)
  let forest =
    Forest.make ~name:"quant-dirty" ~task:Forest.Regression ~num_features:2
      [|
        Tree.Node
          {
            feature = 0;
            threshold = 0.3;
            left = Tree.Leaf 0.1;
            right = Tree.Leaf 0.7;
          };
      |]
  in
  let t =
    Treebeard.make
      ~precision:(`Quantized { Treebeard.bits = `I16; tolerance = 1e-30 })
      (`Forest forest)
  in
  Alcotest.(check string) "fell back" "float"
    (Treebeard.tier_to_string t.Treebeard.tier);
  Alcotest.(check bool) "N005 reported" true
    (List.exists (fun d -> d.D.code = "N005") t.Treebeard.precision_diags);
  Alcotest.(check bool) "blocking findings demoted to info" true
    (not (D.has_errors t.Treebeard.precision_diags));
  (* The fallback predictor is the float path, bit for bit. *)
  let plain = Treebeard.make (`Forest forest) in
  let rng = Prng.create 43 in
  let rows = random_rows rng forest.Forest.num_features 8 in
  let got = Treebeard.predict_forest t rows in
  let want = Treebeard.predict_forest plain rows in
  Array.iteri
    (fun i g ->
      if not (bitwise_eq g want.(i)) then
        Alcotest.failf "fallback diverged from the float compile on row %d" i)
    got

let test_precision_strings () =
  (match Treebeard.precision_of_string "int16" with
  | Ok p -> check_string "int16" "int16" (Treebeard.precision_to_string p)
  | Error e -> Alcotest.fail e);
  (match Treebeard.precision_of_string "float" with
  | Ok p -> check_string "float" "float" (Treebeard.precision_to_string p)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bad name rejected" true
    (Result.is_error (Treebeard.precision_of_string "bf16"))

let test_check_quant_requires_quantized () =
  let forest = clean_forest () in
  let cert = Numeric.certify ~width:Numeric.I16 forest in
  let lowered = Lower.lower forest Schedule.default in
  match Validate.check_quant forest cert.Numeric.plan lowered with
  | [ f ] ->
    Alcotest.(check string) "T005" "T005" f.Validate.code;
    Alcotest.(check bool) "error severity" true
      (f.Validate.severity = D.Error)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_check_quant_clean () =
  let forest, cert, lowered = quantized_lowering () in
  Alcotest.(check int) "no findings" 0
    (List.length (Validate.check_quant forest cert.Numeric.plan lowered))

let suite =
  [
    qcheck ~count:40 ~name:"quantized lowering+JIT == qpredict_raw (bitwise)"
      seed_gen jit_bitwise_property;
    qcheck ~count:25 ~name:"resident Reg_ir programs == Layout.walk (bitwise)"
      seed_gen resident_interp_property;
    qcheck ~count:40 ~name:"deviation bound honored outside dead zones"
      seed_gen deviation_contract_property;
    quick "pack: quantized round-trip" test_pack_roundtrip;
    quick "pack: quant/layout mismatch raises" test_pack_mismatch_raises;
    quick "pack: float artifacts carry no quant block"
      test_float_pack_has_no_quant_block;
    quick "make: ~precision int16 resolves and matches qpredict_raw"
      test_make_int16;
    quick "make: impossible tolerance falls back to float with N005"
      test_make_fallback;
    quick "precision_of_string round-trips" test_precision_strings;
    quick "check_quant: float lowering is refused" test_check_quant_requires_quantized;
    quick "check_quant: clean quantized lowering passes" test_check_quant_clean;
  ]
