(* The static-analysis framework: per-level verifiers, the verified pass
   manager, and negative tests that seeded IR mutations are rejected with
   the right structured diagnostic. *)

open Helpers
module Prng = Tb_util.Prng
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Generators = Tb_data.Generators
module Train = Tb_gbt.Train
module Itree = Tb_hir.Itree
module Tiling = Tb_hir.Tiling
module Lut = Tb_hir.Lut
module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program
module Mir = Tb_mir.Mir
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Reg_ir = Tb_lir.Reg_ir
module Reg_codegen = Tb_lir.Reg_codegen
module Jit = Tb_vm.Jit
module D = Tb_diag.Diagnostic
module Hir_check = Tb_analysis.Hir_check
module Mir_check = Tb_analysis.Mir_check
module Lir_check = Tb_analysis.Lir_check
module Tbcheck = Tb_analysis.Tbcheck
module Validate = Tb_analysis.Validate
module Passman = Tb_core.Passman

let show ds = String.concat "; " (List.map D.to_string ds)
let has_code c ds = List.exists (fun d -> d.D.code = c) ds

let check_has_code c ds =
  if not (has_code c ds) then
    Alcotest.failf "expected a %s finding, got: [%s]" c (show ds)

let check_no_errors what ds =
  if D.has_errors ds then
    Alcotest.failf "%s: unexpected errors: [%s]" what (show (D.errors ds))

let random_schedule rng =
  {
    Schedule.scalar_baseline with
    tile_size = 1 + Prng.int rng 5;
    tiling =
      Prng.choose rng
        [| Schedule.Basic; Schedule.Probability_based |];
    loop_order =
      (if Prng.bool rng then Schedule.One_tree_at_a_time
       else Schedule.One_row_at_a_time);
    pad_and_unroll = Prng.bool rng;
    peel = Prng.bool rng;
    interleave = 1 lsl Prng.int rng 3;
    layout =
      (if Prng.bool rng then Schedule.Sparse_layout
       else Schedule.Array_layout);
    num_threads = 1 + Prng.int rng 4;
  }

(* --- the verified pipeline on well-formed inputs --- *)

let test_passman_default_clean () =
  let rng = Prng.create 11 in
  let forest = Forest.random ~num_trees:8 ~max_depth:6 ~num_features:5 rng in
  match Passman.lower forest Schedule.default with
  | Error report ->
    Alcotest.failf "pipeline rejected a valid model:\n%s"
      (Passman.report_to_string report)
  | Ok (_, report) ->
    check_bool "report ok" true (Passman.ok report);
    let names = List.map (fun s -> s.Passman.stage) report.Passman.stages in
    List.iter
      (fun s -> check_bool s true (List.mem s names))
      [
        "schedule"; "hir"; "mir:lower"; "mir:specialize"; "mir:interleave";
        "mir:parallelize"; "lir:layout"; "lir:walks";
      ]

let test_passman_matches_unverified_lower () =
  let rng = Prng.create 12 in
  let forest = Forest.random ~num_trees:6 ~max_depth:6 ~num_features:5 rng in
  let rows = random_rows rng 5 17 in
  match Passman.lower forest Schedule.default with
  | Error report ->
    Alcotest.failf "pipeline failed:\n%s" (Passman.report_to_string report)
  | Ok (lowered, _) ->
    let want = Jit.compile (Lower.lower forest Schedule.default) rows in
    let got = Jit.compile lowered rows in
    check_bool "verified pipeline computes the same program" true
      (Array.for_all2 (fun a b -> arrays_close a b) want got)

let pipeline_clean_property seed =
  let rng = Prng.create seed in
  let forest =
    Forest.random
      ~num_trees:(1 + Prng.int rng 8)
      ~max_depth:(1 + Prng.int rng 6)
      ~num_features:(2 + Prng.int rng 6)
      rng
  in
  let schedule = random_schedule rng in
  let batch_size = 1 + Prng.int rng 64 in
  match Passman.lower ~batch_size forest schedule with
  | Ok (_, report) ->
    Passman.ok report
    || QCheck2.Test.fail_reportf "errors on %s:\n%s"
         (Schedule.to_string schedule)
         (Passman.report_to_string report)
  | Error report ->
    QCheck2.Test.fail_reportf "pipeline rejected %s:\n%s"
      (Schedule.to_string schedule)
      (Passman.report_to_string report)

let walk_programs_verify_property seed =
  let rng = Prng.create seed in
  let forest =
    Forest.random
      ~num_trees:(1 + Prng.int rng 6)
      ~max_depth:(1 + Prng.int rng 6)
      ~num_features:(2 + Prng.int rng 5)
      rng
  in
  let schedule = random_schedule rng in
  let lp = Lower.lower forest schedule in
  let env =
    Lir_check.env_of_layout ~num_features:forest.Forest.num_features
      lp.Lower.layout
  in
  List.for_all
    (fun (i, p) ->
      let ds = Lir_check.check_program env p in
      (not (D.has_errors ds))
      || QCheck2.Test.fail_reportf "variant %d of %s: [%s]" i
           (Schedule.to_string schedule)
           (show (D.errors ds)))
    (Reg_codegen.all_variants lp.Lower.layout lp.Lower.mir)

let test_table2_grid_clean () =
  let rng = Prng.create 13 in
  let forest = Forest.random ~num_trees:6 ~max_depth:5 ~num_features:5 rng in
  List.iter
    (fun schedule ->
      match Passman.lower ~batch_size:32 forest schedule with
      | Ok (_, report) ->
        if not (Passman.ok report) then
          Alcotest.failf "grid schedule %s:\n%s"
            (Schedule.to_string schedule)
            (Passman.report_to_string report)
      | Error report ->
        Alcotest.failf "grid schedule %s rejected:\n%s"
          (Schedule.to_string schedule)
          (Passman.report_to_string report))
    Schedule.table2_grid

let test_trained_model_clean () =
  let rng = Prng.create 14 in
  let ds = Generators.higgs ~rows:400 rng in
  let params = { Train.default_params with num_rounds = 12; max_depth = 5 } in
  let forest = Train.fit ~params ds in
  List.iter
    (fun schedule ->
      match Passman.lower ~batch_size:256 forest schedule with
      | Ok (_, report) -> check_bool "trained model ok" true (Passman.ok report)
      | Error report ->
        Alcotest.failf "trained model rejected on %s:\n%s"
          (Schedule.to_string schedule)
          (Passman.report_to_string report))
    [
      Schedule.scalar_baseline;
      Schedule.default;
      { Schedule.default with layout = Schedule.Array_layout; tile_size = 3 };
      Schedule.with_threads Schedule.default 4;
    ]

let test_tbcheck_lowered_clean_and_sorted () =
  let rng = Prng.create 15 in
  let forest = Forest.random ~num_trees:5 ~max_depth:6 ~num_features:4 rng in
  let lp = Lower.lower forest Schedule.default in
  let ds = Tbcheck.check_lowered lp in
  check_no_errors "check_lowered" ds;
  let rec sorted = function
    | a :: (b :: _ as rest) -> D.compare a b <= 0 && sorted rest
    | _ -> true
  in
  check_bool "sorted most-severe-first" true (sorted ds)

(* --- negative tests: seeded mutations, one distinct code each --- *)

(* A fixed tree whose internal nodes are identifiable by their feature id:
   f0 at the root, f1/f2 down the left spine, f3 on the right. *)
let handmade_tree =
  let n f l r = Tree.Node { feature = f; threshold = 0.5; left = l; right = r } in
  n 0
    (n 1 (Tree.Leaf 1.0) (n 2 (Tree.Leaf 2.0) (Tree.Leaf 3.0)))
    (n 3 (Tree.Leaf 4.0) (Tree.Leaf 5.0))

let node_with_feature it f =
  let found = ref (-1) in
  for i = 0 to it.Itree.num_nodes - 1 do
    if (not (Itree.is_leaf it i)) && it.Itree.feature.(i) = f then found := i
  done;
  if !found < 0 then Alcotest.failf "no internal node with feature %d" f;
  !found

let test_mutated_tiling_leaf_in_tile () =
  let it = Itree.of_tree handmade_tree in
  let t = Tiling.basic it ~tile_size:2 in
  let tile_of_node = Array.copy t.Tiling.tile_of_node in
  let leaf = ref (-1) in
  for i = 0 to it.Itree.num_nodes - 1 do
    if Itree.is_leaf it i && !leaf < 0 then leaf := i
  done;
  tile_of_node.(!leaf) <- 0;
  check_has_code "H003"
    (Hir_check.check_tiling it { t with Tiling.tile_of_node })

let test_mutated_tiling_unassigned_internal () =
  let it = Itree.of_tree handmade_tree in
  let t = Tiling.basic it ~tile_size:2 in
  let tile_of_node = Array.copy t.Tiling.tile_of_node in
  tile_of_node.(node_with_feature it 3) <- -1;
  check_has_code "H001"
    (Hir_check.check_tiling it { t with Tiling.tile_of_node })

let test_mutated_tiling_disconnected_tile () =
  (* f2 and f3 sit in different subtrees: a tile holding exactly those two
     nodes is not edge-connected. *)
  let it = Itree.of_tree handmade_tree in
  let tile_of_node = Array.make it.Itree.num_nodes (-1) in
  tile_of_node.(node_with_feature it 0) <- 0;
  tile_of_node.(node_with_feature it 1) <- 0;
  tile_of_node.(node_with_feature it 2) <- 1;
  tile_of_node.(node_with_feature it 3) <- 1;
  check_has_code "H002"
    (Hir_check.check_tiling it { Tiling.tile_size = 2; tile_of_node; num_tiles = 2 })

let test_mutated_tiling_not_maximal () =
  (* Room for two more nodes in the root tile while its out-edges lead to
     internal nodes: violates maximality. *)
  let it = Itree.of_tree handmade_tree in
  let tile_of_node = Array.make it.Itree.num_nodes (-1) in
  tile_of_node.(node_with_feature it 0) <- 0;
  tile_of_node.(node_with_feature it 1) <- 1;
  tile_of_node.(node_with_feature it 2) <- 1;
  tile_of_node.(node_with_feature it 3) <- 2;
  check_has_code "H004"
    (Hir_check.check_tiling it { Tiling.tile_size = 3; tile_of_node; num_tiles = 3 })

let test_mutated_lut_entry () =
  let lut = Lut.create ~tile_size:2 in
  let shape =
    Tb_hir.Shape.Node (Some (Tb_hir.Shape.Node (None, None)), None)
  in
  let id = Lut.shape_id lut shape in
  (Lut.table lut).(id).(0) <- 99;
  check_has_code "H010" (Hir_check.check_lut lut)

let test_illegal_schedule_fields () =
  check_has_code "S002"
    (Hir_check.check_schedule { Schedule.default with interleave = 0 });
  check_has_code "S001"
    (Hir_check.check_schedule { Schedule.default with tile_size = 9 });
  check_has_code "S004"
    (Hir_check.check_schedule { Schedule.default with alpha = 0.0 });
  check_has_code "S003"
    (Hir_check.check_schedule { Schedule.default with num_threads = 0 })

let test_passman_stops_at_bad_schedule () =
  let rng = Prng.create 16 in
  let forest = Forest.random ~num_trees:3 ~max_depth:4 ~num_features:4 rng in
  match Passman.lower forest { Schedule.default with interleave = 0 } with
  | Ok _ -> Alcotest.fail "illegal schedule accepted"
  | Error report ->
    check_has_code "S002" (Passman.diagnostics report);
    check_int "stopped at the first stage" 1 (List.length report.Passman.stages);
    check_string "stage name" "schedule"
      (List.hd report.Passman.stages).Passman.stage

let small_hir_and_mir () =
  let rng = Prng.create 17 in
  let forest = Forest.random ~num_trees:4 ~max_depth:5 ~num_features:4 rng in
  let hir = Program.build forest Schedule.default in
  (hir, Mir.lower hir)

let test_mutated_mir_duplicated_group () =
  let hir, mir = small_hir_and_mir () in
  let mutated =
    { mir with Mir.group_plans = Array.append mir.Mir.group_plans [| mir.Mir.group_plans.(0) |] }
  in
  check_has_code "M001" (Mir_check.check hir mutated)

let nonuniform_hir_and_mir () =
  (* Leaf depths 1, 2, 3, 3: not uniform, so an unrolled walk is illegal. *)
  let n f l r = Tree.Node { feature = f; threshold = 0.5; left = l; right = r } in
  let tree =
    n 0 (Tree.Leaf 1.0)
      (n 1 (Tree.Leaf 2.0) (n 2 (Tree.Leaf 3.0) (Tree.Leaf 4.0)))
  in
  let forest = Forest.make ~task:Forest.Regression ~num_features:3 [| tree |] in
  let schedule =
    { Schedule.scalar_baseline with pad_and_unroll = false; peel = false }
  in
  let hir = Program.build forest schedule in
  (hir, Mir.lower_of_hir hir)

let set_walk mir walk =
  {
    mir with
    Mir.group_plans = Array.map (fun p -> { p with Mir.walk }) mir.Mir.group_plans;
  }

let test_mutated_mir_unrolled_nonuniform () =
  let hir, mir = nonuniform_hir_and_mir () in
  check_has_code "M002"
    (Mir_check.check hir (set_walk mir (Mir.Unrolled_walk { depth = 3 })))

let test_mutated_mir_overdeep_peel () =
  let hir, mir = nonuniform_hir_and_mir () in
  check_has_code "M003"
    (Mir_check.check hir (set_walk mir (Mir.Peeled_walk { peel = 99 })))

let test_row_partition_overlap_and_gap () =
  check_has_code "M010"
    (Mir_check.check_row_partition ~batch:8 [| (0, 5); (3, 8) |]);
  check_has_code "M011"
    (Mir_check.check_row_partition ~batch:8 [| (0, 3); (5, 8) |]);
  check_no_errors "real partition"
    (Mir_check.check_row_partition ~batch:1000
       (Mir.row_partition ~num_threads:7 ~batch:1000))

let small_layout_env () =
  let rng = Prng.create 18 in
  let forest = Forest.random ~num_trees:4 ~max_depth:5 ~num_features:4 rng in
  let lp = Lower.lower forest Schedule.default in
  (lp.Lower.layout, Lir_check.env_of_layout ~num_features:4 lp.Lower.layout)

let walk_stub body =
  {
    Reg_ir.tile_size = 8;
    layout = Layout.Sparse_kind;
    body;
    num_iregs = 10;
    num_fregs = 1;
    num_vregs = 4;
    lanes = 1;
  }

let test_mutated_walk_constant_oob_load () =
  let _, env = small_layout_env () in
  let p =
    walk_stub
      [
        Reg_ir.Iset (2, Reg_ir.Iconst 1_000_000);
        Reg_ir.Fset (0, Reg_ir.Fload (Reg_ir.Thresholds, 2));
      ]
  in
  check_has_code "L010" (Lir_check.check_program env p)

let test_mutated_walk_swapped_register () =
  (* Swapping the destination and source of the first def leaves the source
     register undefined at its use. *)
  let _, env = small_layout_env () in
  let p = walk_stub [ Reg_ir.Iset (2, Reg_ir.Imov 5) ] in
  check_has_code "L002" (Lir_check.check_program env p);
  check_has_code "L002" (Reg_ir.check p);
  check_has_code "L001" (Reg_ir.check (walk_stub [ Reg_ir.Iset (99, Reg_ir.Iconst 0) ]))

let test_mutated_layout_bad_root () =
  let lay, _ = small_layout_env () in
  lay.Layout.tree_root.(0) <- 1_000_000;
  check_has_code "L022" (Lir_check.check_layout ~num_features:4 lay)

let test_mutated_layout_dangling_child_ptr () =
  let lay, _ = small_layout_env () in
  let mutated = ref false in
  Array.iteri
    (fun s p ->
      if (not !mutated) && p >= 0 then begin
        lay.Layout.child_ptr.(s) <- 1_000_000;
        mutated := true
      end)
    lay.Layout.child_ptr;
  check_bool "found a tile slot to corrupt" true !mutated;
  check_has_code "L020" (Lir_check.check_layout ~num_features:4 lay)

let test_mutated_layout_bad_leaf_index () =
  let lay, _ = small_layout_env () in
  let mutated = ref false in
  Array.iteri
    (fun s p ->
      if (not !mutated) && p < 0 then begin
        lay.Layout.child_ptr.(s) <- -1_000_000;
        mutated := true
      end)
    lay.Layout.child_ptr;
  check_bool "found a leaf-children slot to corrupt" true !mutated;
  check_has_code "L023" (Lir_check.check_layout ~num_features:4 lay)

let test_mutated_layout_bad_lut_row () =
  let lay, _ = small_layout_env () in
  lay.Layout.lut.(0).(0) <- 99;
  check_has_code "L024" (Lir_check.check_layout ~num_features:4 lay)

(* --- the congruence (stride) domain --- *)

let test_congruence_domain () =
  let module C = Tb_analysis.Congruence in
  let c = C.const in
  check_bool "const membership" true (C.mem 7 (c 7));
  check_bool "const exclusion" false (C.mem 8 (c 7));
  (* join of two constants = stride |a-b| through both *)
  let j = C.join (c 8) (c 14) in
  check_int "join 8 14: modulus" 6 j.C.m;
  check_int "join 8 14: residue" 2 j.C.r;
  List.iter
    (fun x -> check_bool (Printf.sprintf "%d in 6Z+2" x) true (C.mem x j))
    [ 2; 8; 14; 20; -4 ];
  check_bool "13 not in 6Z+2" false (C.mem 13 j);
  (* arithmetic: (6Z+2) + (6Z+2) = 6Z+4; scaling multiplies the stride *)
  let s = C.add j j in
  check_int "sum modulus" 6 s.C.m;
  check_int "sum residue" 4 s.C.r;
  let m = C.mul_const 4 (c 3) in
  check_bool "4*3 is the constant 12" true (C.is_const m && C.mem 12 m);
  let scaled = C.mul_const 4 j in
  check_int "scaled modulus" 24 scaled.C.m;
  check_int "scaled residue" 8 scaled.C.r;
  (* sub keeps the gcd stride *)
  let d = C.sub j (c 1) in
  check_int "difference modulus" 6 d.C.m;
  check_int "difference residue" 1 d.C.r;
  (* join with incompatible stride collapses toward top *)
  check_bool "join with top is top" true (C.is_top (C.join j C.top));
  (* interval tightening: snap bounds to the nearest class member *)
  check_bool "tighten_lo rounds up" true (C.tighten_lo j 3.0 = 8.0);
  check_bool "tighten_lo on a member is fixed" true (C.tighten_lo j 8.0 = 8.0);
  check_bool "tighten_hi rounds down" true (C.tighten_hi j 13.0 = 8.0);
  check_bool "tighten_lo passes -inf through" true
    (C.tighten_lo j Float.neg_infinity = Float.neg_infinity);
  (* empty tightened interval: lo jumps past hi, which the analysis reads
     as "no concrete index reaches this access" *)
  check_bool "tightening can empty an interval" true
    (C.tighten_lo j 3.0 > C.tighten_hi j 7.0)

(* --- relational vs legacy on real sparse walks --- *)

let sparse_loop_schedule =
  {
    Schedule.default with
    Schedule.tile_size = 4;
    interleave = 1;
    pad_and_unroll = false;
    peel = false;
    layout = Schedule.Sparse_layout;
  }

let test_relational_discharges_sparse_l011 () =
  let rng = Prng.create 31 in
  let forest = Forest.random ~num_trees:6 ~max_depth:6 ~num_features:5 rng in
  let lp = Lower.lower forest sparse_loop_schedule in
  let run rel =
    Lir_check.check ~relational:rel ~num_features:5 lp.Lower.layout
      lp.Lower.mir
  in
  let l011 ds = List.filter (fun d -> d.D.code = "L011") ds in
  let legacy = l011 (run false) and relational = l011 (run true) in
  check_bool
    (Printf.sprintf "legacy interval analysis warns on the sparse loop (%d)"
       (List.length legacy))
    true
    (legacy <> []);
  check_bool
    (Printf.sprintf "relational analysis discharges them all, kept: [%s]"
       (show relational))
    true (relational = [])

let test_jam_analysis_does_not_multiply_findings () =
  (* Per-lane analysis of a jammed variant must report exactly the
     single-lane findings (plus the L014 partition fact) — no cross-lane
     widening, no per-lane duplication. *)
  let rng = Prng.create 37 in
  let forest = Forest.random ~num_trees:8 ~max_depth:5 ~num_features:5 rng in
  let jam_schedule = { sparse_loop_schedule with Schedule.interleave = 4 } in
  let count code ds = List.length (List.filter (fun d -> d.D.code = code) ds) in
  let run schedule rel =
    let lp = Lower.lower forest schedule in
    Lir_check.check ~relational:rel ~num_features:5 lp.Lower.layout
      lp.Lower.mir
  in
  let single = run sparse_loop_schedule true in
  let jammed = run jam_schedule true in
  check_bool "jammed variants prove lane independence" true
    (count "L014" jammed > 0);
  check_int "no lane collisions" 0 (count "L013" jammed);
  List.iter
    (fun code ->
      check_int
        (Printf.sprintf "%s count matches the single-lane analysis" code)
        (count code single) (count code jammed))
    [ "L010"; "L011"; "L012" ];
  (* The legacy joint analysis, by contrast, loses precision on the jammed
     register file: it can only report at least as many findings. *)
  let legacy_jammed = run jam_schedule false in
  check_bool "legacy joint analysis is no more precise" true
    (count "L011" legacy_jammed + count "L012" legacy_jammed
     >= count "L011" jammed + count "L012" jammed)

(* --- translation validation (T00x) --- *)

let fail_findings where schedule fs =
  Alcotest.failf "validator findings under %s at %s: %s"
    (Schedule.to_string schedule)
    where
    (show (Validate.to_diagnostics fs))

let test_validate_table2_clean () =
  let rng = Prng.create 21 in
  let forest = Forest.random ~num_trees:6 ~max_depth:5 ~num_features:5 rng in
  List.iter
    (fun schedule ->
      let lp = Lower.lower forest schedule in
      match Validate.check_all lp.Lower.hir lp.Lower.mir lp.Lower.layout with
      | [] -> ()
      | fs -> fail_findings "check_all" schedule fs)
    Schedule.table2_grid

(* The ISSUE-level property: on random models x Table II schedules the
   validator passes, and every per-form summary is an exact partition of
   feature space — each input row hits exactly one (box, leaf) path. *)
let validate_clean_and_tiling_property seed =
  let rng = Prng.create seed in
  let forest =
    Forest.random
      ~num_trees:(1 + Prng.int rng 6)
      ~max_depth:(1 + Prng.int rng 6)
      ~num_features:(2 + Prng.int rng 6)
      rng
  in
  let grid = Array.of_list Schedule.table2_grid in
  let schedule = grid.(Prng.int rng (Array.length grid)) in
  let lp = Lower.lower forest schedule in
  (match Validate.check_all lp.Lower.hir lp.Lower.mir lp.Lower.layout with
  | [] -> ()
  | fs ->
    QCheck2.Test.fail_reportf "validator findings under %s: %s"
      (Schedule.to_string schedule)
      (show (Validate.to_diagnostics fs)));
  let check what tree (s : Validate.summary) =
    if s.Validate.stuck <> [] then
      QCheck2.Test.fail_reportf "%s summary of tree %d has stuck regions" what
        tree;
    if not (Validate.exact_partition s) then
      QCheck2.Test.fail_reportf
        "%s summary of tree %d does not tile feature space" what tree
  in
  Array.iteri
    (fun i (e : Program.tree_entry) ->
      let src =
        lp.Lower.hir.Program.forest.Forest.trees.(e.Program.original_index)
      in
      check "source" i (Validate.summarize_source src);
      check "hir" i (Validate.summarize_hir e.Program.tiled);
      check "layout" i (Validate.summarize_layout lp.Lower.layout ~tree:i))
    lp.Lower.hir.Program.trees;
  true

let test_validate_summary_shape () =
  (* The reduced LUT decision structures must keep summaries linear in
     the source leaf count: padding and hop tiles add no paths. *)
  let rng = Prng.create 23 in
  let forest = Forest.random ~num_trees:4 ~max_depth:6 ~num_features:5 rng in
  List.iter
    (fun schedule ->
      let lp = Lower.lower forest schedule in
      Array.iteri
        (fun i (e : Program.tree_entry) ->
          let src =
            lp.Lower.hir.Program.forest.Forest.trees.(e.Program.original_index)
          in
          let leaves = Validate.num_paths (Validate.summarize_source src) in
          let hir = Validate.num_paths (Validate.summarize_hir e.Program.tiled) in
          let lir =
            Validate.num_paths (Validate.summarize_layout lp.Lower.layout ~tree:i)
          in
          check_int (Printf.sprintf "tree %d: hir paths = source leaves" i)
            leaves hir;
          check_int (Printf.sprintf "tree %d: layout paths = source leaves" i)
            leaves lir)
        lp.Lower.hir.Program.trees)
    [ Schedule.default; { Schedule.default with Schedule.layout = Schedule.Sparse_layout } ]

(* ---------------- code registry / census families ---------------- *)

let test_registry_codes_and_families () =
  let module Census = Tb_analysis.Census in
  let registry = D.registry in
  (* Codes are unique. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (code, _) ->
      if Hashtbl.mem seen code then
        Alcotest.failf "code %s registered twice" code;
      Hashtbl.add seen code ())
    registry;
  (* The leading letter determines the level. *)
  let level_of_letter = function
    | 'S' -> D.Schedule
    | 'H' -> D.Hir
    | 'M' -> D.Mir
    | 'L' -> D.Lir
    | 'C' -> D.Cost
    | 'V' -> D.Serve
    | 'T' -> D.Validate
    | 'A' -> D.Artifact
    | 'N' -> D.Numeric
    | c -> Alcotest.failf "unknown code letter %c" c
  in
  List.iter
    (fun (code, level) ->
      check_bool
        (Printf.sprintf "%s level matches its letter" code)
        true
        (level = level_of_letter code.[0]))
    registry;
  (* Table-driven family coverage: every tracked code of every family
     maps back to exactly that family, is registered, and hard/soft are
     subsets of the tracked codes. *)
  List.iter
    (fun (f : Census.family) ->
      List.iter
        (fun code ->
          (match Census.family_of_code code with
          | Some f' ->
            check_string
              (Printf.sprintf "%s belongs to one family" code)
              f.Census.family_name f'.Census.family_name
          | None -> Alcotest.failf "%s tracked but family_of_code = None" code);
          check_bool
            (Printf.sprintf "%s is a registered code" code)
            true
            (List.mem_assoc code registry))
        f.Census.codes;
      List.iter
        (fun code ->
          check_bool
            (Printf.sprintf "hard code %s is tracked" code)
            true
            (List.mem code f.Census.codes))
        f.Census.hard;
      List.iter
        (fun code ->
          check_bool
            (Printf.sprintf "soft code %s is tracked" code)
            true
            (List.mem code f.Census.codes))
        f.Census.soft)
    Census.all_families;
  (* No code is claimed by two families. *)
  let all_tracked =
    List.concat_map (fun (f : Census.family) -> f.Census.codes)
      Census.all_families
  in
  check_int "no family collisions"
    (List.length all_tracked)
    (List.length (List.sort_uniq compare all_tracked));
  (* Expected family per letter, including codes outside any census. *)
  let family_name code =
    Option.map
      (fun (f : Census.family) -> f.Census.family_name)
      (Census.family_of_code code)
  in
  List.iter
    (fun (code, want) ->
      check_bool
        (Printf.sprintf "family_of_code %s" code)
        true
        (family_name code = want))
    [
      ("L010", Some "lir-bounds"); ("L014", Some "lir-bounds");
      ("T001", Some "validate");
      ("T004", Some "validate"); ("N001", Some "numeric");
      ("N004", Some "numeric"); ("S001", None); ("H010", None);
      ("M006", None); ("L001", None); ("C001", None); ("V002", None);
      ("A003", None); ("Z999", None);
    ]

let test_passman_numeric_stage_advisory () =
  let rng = Prng.create 29 in
  let forest = Forest.random ~num_trees:5 ~max_depth:4 ~num_features:4 rng in
  match Passman.lower forest Schedule.default with
  | Error report ->
    Alcotest.failf "pipeline failed: %s" (Passman.report_to_string report)
  | Ok (_, report) ->
    let stage =
      List.find_opt
        (fun s -> s.Passman.stage = "numeric:model")
        report.Passman.stages
    in
    (match stage with
    | None -> Alcotest.fail "report has no numeric:model stage"
    | Some s ->
      List.iter
        (fun d ->
          check_bool "numeric stage findings are info-severity" true
            (d.D.severity = D.Info);
          check_bool "numeric stage findings are Numeric-level" true
            (d.D.level = D.Numeric))
        s.Passman.diagnostics);
    (* The stage runs right after the schedule check. *)
    (match report.Passman.stages with
    | s0 :: s1 :: _ ->
      check_string "first stage" "schedule" s0.Passman.stage;
      check_string "second stage" "numeric:model" s1.Passman.stage
    | _ -> Alcotest.fail "fewer than two stages")

let suite =
  [
    quick "verified pipeline accepts the default schedule"
      test_passman_default_clean;
    quick "code registry unique + census family coverage"
      test_registry_codes_and_families;
    quick "Passman numeric:model stage is advisory (info-only)"
      test_passman_numeric_stage_advisory;
    quick "verified pipeline == unverified lowering"
      test_passman_matches_unverified_lower;
    qcheck ~count:50 ~name:"pipeline lint-clean on random models x schedules"
      seed_gen pipeline_clean_property;
    qcheck ~count:50 ~name:"every walk program passes the bounds dataflow"
      seed_gen walk_programs_verify_property;
    quick "Table II grid lints clean" test_table2_grid_clean;
    quick "trained GBT model lints clean" test_trained_model_clean;
    quick "tbcheck on a lowered program: clean and sorted"
      test_tbcheck_lowered_clean_and_sorted;
    quick "mutation: leaf inside a tile -> H003" test_mutated_tiling_leaf_in_tile;
    quick "mutation: unassigned internal -> H001"
      test_mutated_tiling_unassigned_internal;
    quick "mutation: disconnected tile -> H002"
      test_mutated_tiling_disconnected_tile;
    quick "mutation: non-maximal tiling -> H004" test_mutated_tiling_not_maximal;
    quick "mutation: corrupted LUT entry -> H010" test_mutated_lut_entry;
    quick "illegal schedule fields -> S00x" test_illegal_schedule_fields;
    quick "pass manager stops at an illegal schedule"
      test_passman_stops_at_bad_schedule;
    quick "mutation: duplicated group plan -> M001"
      test_mutated_mir_duplicated_group;
    quick "mutation: unrolled walk on non-uniform group -> M002"
      test_mutated_mir_unrolled_nonuniform;
    quick "mutation: over-deep peel -> M003" test_mutated_mir_overdeep_peel;
    quick "row partition: overlap -> M010, gap -> M011, real one clean"
      test_row_partition_overlap_and_gap;
    quick "mutation: constant out-of-bounds load -> L010"
      test_mutated_walk_constant_oob_load;
    quick "mutation: swapped registers -> L002/L001"
      test_mutated_walk_swapped_register;
    quick "mutation: dangling tree root -> L022" test_mutated_layout_bad_root;
    quick "mutation: dangling child pointer -> L020"
      test_mutated_layout_dangling_child_ptr;
    quick "mutation: leaf index out of store -> L023"
      test_mutated_layout_bad_leaf_index;
    quick "mutation: invalid LUT child -> L024" test_mutated_layout_bad_lut_row;
    quick "congruence domain algebra + tightening" test_congruence_domain;
    quick "relational analysis discharges sparse-loop L011"
      test_relational_discharges_sparse_l011;
    quick "jam per-lane analysis: lane-0 findings once + L014"
      test_jam_analysis_does_not_multiply_findings;
    quick "translation validation: Table II grid validates cleanly"
      test_validate_table2_clean;
    qcheck ~count:25
      ~name:"translation validation: clean + summaries tile feature space"
      seed_gen validate_clean_and_tiling_property;
    quick "translation validation: path counts stay linear in source leaves"
      test_validate_summary_shape;
  ]
