open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program
module Layout = Tb_lir.Layout
module Ops = Tb_lir.Ops
module Lower = Tb_lir.Lower
module Mir = Tb_mir.Mir

let random_forest ?(num_trees = 10) seed =
  Forest.random ~num_trees ~max_depth:7 ~num_features:6 (Prng.create seed)

let layout_walk_equivalence_property kind seed =
  let rng = Prng.create seed in
  let forest = Forest.random ~num_trees:8 ~max_depth:7 ~num_features:6 rng in
  let tile_size = 1 + Prng.int rng 4 in
  let schedule =
    { Schedule.scalar_baseline with tile_size; pad_and_unroll = Prng.bool rng }
  in
  let p = Program.build forest schedule in
  let lay = Layout.build_kind kind p in
  let rows = random_rows rng 6 32 in
  Array.for_all
    (fun row ->
      let ok = ref true in
      for tree = 0 to Array.length forest.Forest.trees - 1 do
        let expected = Tb_hir.Tiled_tree.walk p.Program.trees.(tree).Program.tiled row in
        if not (floats_close expected (Layout.walk lay ~tree row)) then ok := false
      done;
      !ok)
    rows
  || QCheck2.Test.fail_reportf "layout walk diverges (nt=%d)" tile_size

let test_array_layout_is_bloated () =
  (* Array layout must allocate at least as many slots as there are tiled
     nodes, usually far more. *)
  let p = Program.build (random_forest 3) { Schedule.scalar_baseline with tile_size = 2 } in
  let arr = Layout.build_kind Layout.Array_kind p in
  let sparse = Layout.build_kind Layout.Sparse_kind p in
  check_bool "sparse smaller than array" true
    (Layout.memory_bytes sparse < Layout.memory_bytes arr)

let test_array_layout_root_offsets_disjoint () =
  let p = Program.build (random_forest 4) { Schedule.scalar_baseline with tile_size = 2 } in
  let lay = Layout.build_kind Layout.Array_kind p in
  let roots = lay.Layout.tree_root in
  for i = 0 to Array.length roots - 2 do
    check_bool "offsets increasing" true (roots.(i) < roots.(i + 1))
  done

let test_sparse_layout_single_leaf_tree () =
  let forest =
    Forest.make ~task:Forest.Regression ~num_features:2
      [| Tb_model.Tree.Leaf 4.25 |]
  in
  let p = Program.build forest { Schedule.scalar_baseline with tile_size = 4 } in
  let lay = Layout.build_kind Layout.Sparse_kind p in
  check_bool "root encoded as leaf" true (lay.Layout.tree_root.(0) < 0);
  check_float "walk returns constant" 4.25 (Layout.walk lay ~tree:0 [| 0.0; 0.0 |])

let test_sparse_children_homogeneous () =
  (* Every sparse tile's child pointer must be decodable: tiles with
     negative pointers index the leaf array in range; tiles with
     non-negative pointers index slots in range. *)
  let p = Program.build (random_forest 5) { Schedule.scalar_baseline with tile_size = 3 } in
  let lay = Layout.build_kind Layout.Sparse_kind p in
  let slots = Layout.num_slots lay in
  Array.iteri
    (fun s sid ->
      if sid >= 0 then begin
        let p' = lay.Layout.child_ptr.(s) in
        if p' >= 0 then check_bool "tile children in range" true (p' < slots)
        else
          check_bool "leaf children in range" true
            (-p' - 1 < Array.length lay.Layout.leaf_values)
      end)
    lay.Layout.shape_ids

let test_layout_walk_trace_counts_depth () =
  let p = Program.build (random_forest 6) { Schedule.scalar_baseline with tile_size = 2 } in
  let lay = Layout.build p in
  let rng = Prng.create 99 in
  for _ = 1 to 20 do
    let row = random_row rng 6 in
    for tree = 0 to lay.Layout.num_trees - 1 do
      let count = ref 0 in
      let (_ : float) = Layout.walk_with_trace lay ~tree row ~on_slot:(fun _ -> incr count) in
      let tiled = p.Program.trees.(tree).Program.tiled in
      check_bool "trace length within depth bound" true
        (!count <= Tb_hir.Tiled_tree.depth tiled + 1)
    done
  done

let test_array_slab_cap () =
  (* A pathological chain tiled with size 8 would explode the implicit
     array indexing; builder must refuse. *)
  let rec chain n =
    if n = 0 then Tb_model.Tree.Leaf 1.0
    else
      Tb_model.Tree.Node
        { feature = 0; threshold = float_of_int n; left = Tb_model.Tree.Leaf 0.0; right = chain (n - 1) }
  in
  let forest = Forest.make ~task:Forest.Regression ~num_features:1 [| chain 30 |] in
  (* Probability tiling with mass on the deep leaf creates a deep chain of
     tiles. *)
  let rows = Array.make 8 [| 1e9 |] in
  let profiles = Tb_model.Model_stats.profile_forest forest rows in
  let schedule =
    { Schedule.scalar_baseline with tile_size = 2; tiling = Schedule.Probability_based }
  in
  let p = Program.build ~profiles forest schedule in
  check_bool "raises or fits" true
    (match Layout.build_kind Layout.Array_kind p with
    | exception Invalid_argument _ -> true
    | lay -> Layout.num_slots lay <= Layout.max_array_slots + 1)

(* Ops *)

let test_step_ops_scalar_vs_vector () =
  let scalar =
    Ops.step_ops ~layout:Layout.Array_kind ~tile_size:1 (Ops.Tile_step { leaf_check = true })
  in
  let vector =
    Ops.step_ops ~layout:Layout.Array_kind ~tile_size:8 (Ops.Tile_step { leaf_check = true })
  in
  check_bool "scalar has predicate branch" true
    (List.mem Ops.Scalar_compare_branch scalar);
  check_bool "vector has gather" true (List.mem Ops.Gather_row vector);
  check_bool "vector has no predicate branch" false
    (List.mem Ops.Scalar_compare_branch vector)

let test_step_ops_sparse_has_child_ptr () =
  let sparse =
    Ops.step_ops ~layout:Layout.Sparse_kind ~tile_size:4 (Ops.Tile_step { leaf_check = false })
  in
  let arr =
    Ops.step_ops ~layout:Layout.Array_kind ~tile_size:4 (Ops.Tile_step { leaf_check = false })
  in
  check_bool "sparse loads child ptr" true (List.mem Ops.Load_child_ptr sparse);
  check_bool "array does not" false (List.mem Ops.Load_child_ptr arr)

let test_unchecked_steps_have_no_branches () =
  let ops =
    Ops.step_ops ~layout:Layout.Sparse_kind ~tile_size:8 (Ops.Tile_step { leaf_check = false })
  in
  check_bool "no leaf check" false (List.mem Ops.Leaf_check_branch ops);
  check_bool "no loop branch" false (List.mem Ops.Loop_back_branch ops)

let test_dependency_chain_subset_of_step () =
  List.iter
    (fun (layout, nt) ->
      let step = Ops.step_ops ~layout ~tile_size:nt (Ops.Tile_step { leaf_check = true }) in
      let chain = Ops.dependency_chain ~layout ~tile_size:nt (Ops.Tile_step { leaf_check = true }) in
      List.iter
        (fun op -> check_bool (Ops.op_name op ^ " in step") true (List.mem op step))
        chain)
    [ (Layout.Array_kind, 1); (Layout.Array_kind, 8); (Layout.Sparse_kind, 4) ]

let test_code_bytes_ordering () =
  let b walk = Ops.estimated_code_bytes ~layout:Layout.Sparse_kind ~tile_size:8 walk in
  check_bool "unrolled bigger than loop" true
    (b (Mir.Unrolled_walk { depth = 6 }) > b Mir.Loop_walk);
  check_bool "deeper unroll bigger" true
    (b (Mir.Unrolled_walk { depth = 8 }) > b (Mir.Unrolled_walk { depth = 4 }))

(* Lower *)

let lower_equivalence_property seed =
  let rng = Prng.create seed in
  let forest = Forest.random ~num_trees:10 ~max_depth:7 ~num_features:6 rng in
  let schedule =
    {
      Schedule.scalar_baseline with
      tile_size = 1 + Prng.int rng 6;
      loop_order =
        (if Prng.bool rng then Schedule.One_tree_at_a_time else Schedule.One_row_at_a_time);
      pad_and_unroll = Prng.bool rng;
      peel = Prng.bool rng;
      interleave = 1 lsl Prng.int rng 4;
      layout = (if Prng.bool rng then Schedule.Sparse_layout else Schedule.Array_layout);
    }
  in
  let lp = Lower.lower forest schedule in
  let rows = random_rows rng 6 16 in
  Array.for_all
    (fun row ->
      arrays_close (Forest.predict_raw forest row) (Lower.reference_predict lp row))
    rows
  || QCheck2.Test.fail_reportf "lowered reference diverges: %s"
       (Schedule.to_string schedule)

let test_dump_contains_sections () =
  let lp = Lower.lower (random_forest 7) Schedule.default in
  let s = Lower.dump lp in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sec -> check_bool sec true (contains sec))
    [ "schedule"; "MIR loop nest"; "LIR walk body"; "layout"; "WalkDecisionTree" ]

let suite =
  [
    qcheck ~name:"array layout walk == tiled walk" seed_gen
      (layout_walk_equivalence_property Layout.Array_kind);
    qcheck ~name:"sparse layout walk == tiled walk" seed_gen
      (layout_walk_equivalence_property Layout.Sparse_kind);
    quick "sparse smaller than array" test_array_layout_is_bloated;
    quick "array offsets disjoint" test_array_layout_root_offsets_disjoint;
    quick "sparse single-leaf tree" test_sparse_layout_single_leaf_tree;
    quick "sparse children homogeneous" test_sparse_children_homogeneous;
    quick "walk trace bounded by depth" test_layout_walk_trace_counts_depth;
    quick "array slab cap" test_array_slab_cap;
    quick "scalar vs vector step ops" test_step_ops_scalar_vs_vector;
    quick "sparse step loads child ptr" test_step_ops_sparse_has_child_ptr;
    quick "unchecked steps branch-free" test_unchecked_steps_have_no_branches;
    quick "dependency chain subset of step" test_dependency_chain_subset_of_step;
    quick "code size ordering" test_code_bytes_ordering;
    qcheck ~name:"lowered reference == forest" seed_gen lower_equivalence_property;
    quick "dump contains sections" test_dump_contains_sections;
  ]
