open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Config = Tb_cpu.Config
module Treebeard = Tb_core.Treebeard
module Explore = Tb_core.Explore
module Perf = Tb_core.Perf

let random_forest ?(num_trees = 12) seed =
  Forest.random ~num_trees ~max_depth:7 ~num_features:6 (Prng.create seed)

let test_compile_predict_equivalence () =
  let rng = Prng.create 1 in
  let forest = random_forest 1 in
  let rows = random_rows rng 6 100 in
  let compiled = Treebeard.make (`Forest forest) in
  let out = Treebeard.predict_forest compiled rows in
  let expected = Forest.predict_batch_raw forest rows in
  check_bool "equal" true (Array.for_all2 arrays_close out expected)

let test_predict_one () =
  let rng = Prng.create 2 in
  let forest = random_forest 2 in
  let row = random_row rng 6 in
  let compiled = Treebeard.make (`Forest forest) in
  check_bool "single row" true
    (arrays_close (Treebeard.predict_one compiled row) (Forest.predict_raw forest row))

let test_compile_explicit_schedule () =
  let forest = random_forest 3 in
  let compiled = Treebeard.make ~plan:(`Schedule Schedule.scalar_baseline) (`Forest forest) in
  check_bool "schedule stored" true (compiled.Treebeard.schedule = Schedule.scalar_baseline)

let test_of_file () =
  let forest = random_forest 4 in
  let path = Filename.temp_file "tb_core" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tb_model.Serialize.to_file path forest;
      let compiled = Treebeard.make (`File path) in
      let rng = Prng.create 5 in
      let rows = random_rows rng 6 16 in
      check_bool "roundtrip compile" true
        (Array.for_all2 arrays_close
           (Treebeard.predict_forest compiled rows)
           (Forest.predict_batch_raw forest rows)))

let test_dump_ir_nonempty () =
  let compiled = Treebeard.make (`Forest (random_forest 6)) in
  check_bool "dump" true (String.length (Treebeard.dump_ir compiled) > 200)

let test_compile_auto_equivalence () =
  let rng = Prng.create 7 in
  let forest = random_forest 7 in
  let rows = random_rows rng 6 64 in
  let compiled =
    Treebeard.make ~plan:(`Auto Tb_cpu.Config.intel_rocket_lake)
      ~training_rows:rows (`Forest forest)
  in
  check_bool "auto compile correct" true
    (Array.for_all2 arrays_close
       (Treebeard.predict_forest compiled rows)
       (Forest.predict_batch_raw forest rows))

(* Perf *)

let test_perf_simulate_basic () =
  let rng = Prng.create 8 in
  let forest = random_forest 8 in
  let rows = random_rows rng 6 64 in
  let lowered = Tb_lir.Lower.lower forest Schedule.default in
  let p = Perf.simulate ~target:Config.intel_rocket_lake lowered rows in
  check_bool "positive cycles" true (p.Perf.cycles_per_row > 0.0);
  check_bool "time consistent" true
    (floats_close ~eps:1e-6 p.Perf.time_per_row_us (p.Perf.cycles_per_row /. 3500.0))

let test_perf_threads_speedup () =
  let rng = Prng.create 9 in
  let forest = random_forest ~num_trees:30 9 in
  let rows = random_rows rng 6 128 in
  let lowered = Tb_lir.Lower.lower forest Schedule.default in
  let p1 = Perf.simulate ~target:Config.intel_rocket_lake ~threads:1 lowered rows in
  let p16 = Perf.simulate ~target:Config.intel_rocket_lake ~threads:16 lowered rows in
  let s = Perf.speedup ~baseline:p1 p16 in
  check_bool "parallel speedup in (4, 16)" true (s > 4.0 && s < 16.0)

let test_perf_batch_scaling_stable () =
  (* Per-row cycles should be roughly batch-size independent once warm. *)
  let rng = Prng.create 10 in
  let forest = random_forest ~num_trees:30 10 in
  let rows = random_rows rng 6 256 in
  let lowered = Tb_lir.Lower.lower forest Schedule.default in
  let p_small = Perf.simulate ~target:Config.intel_rocket_lake ~batch:256 lowered rows in
  let p_big = Perf.simulate ~target:Config.intel_rocket_lake ~batch:4096 lowered rows in
  let ratio = p_big.Perf.cycles_per_row /. p_small.Perf.cycles_per_row in
  check_bool "within 10%" true (ratio > 0.9 && ratio < 1.1)

let test_perf_empty_rows_rejected () =
  let lowered = Tb_lir.Lower.lower (random_forest 11) Schedule.default in
  check_bool "raises" true
    (match Perf.simulate ~target:Config.intel_rocket_lake lowered [||] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Explore *)

let biased_forest_and_rows seed =
  (* A forest over head-heavy rows: probability tiling should matter. *)
  let rng = Prng.create seed in
  let forest = random_forest ~num_trees:20 seed in
  let hot = random_row rng 6 in
  let rows =
    Array.init 96 (fun i -> if i mod 8 = 0 then random_row rng 6 else Array.copy hot)
  in
  (forest, rows)

let test_greedy_beats_baseline () =
  let forest, rows = biased_forest_and_rows 12 in
  let profiles = Tb_model.Model_stats.profile_forest forest rows in
  let target = Config.intel_rocket_lake in
  let result = Explore.greedy ~target ~profiles forest rows in
  let baseline = Explore.evaluate ~target forest Schedule.scalar_baseline rows in
  check_bool "greedy at least as good as baseline" true
    (result.Explore.perf.Perf.cycles_per_row <= baseline.Perf.cycles_per_row);
  check_bool "evaluated several candidates" true (result.Explore.evaluated >= 10)

let test_exhaustive_no_worse_than_greedy () =
  let forest, rows = biased_forest_and_rows 13 in
  let target = Config.intel_rocket_lake in
  (* Small custom grid containing the greedy space's corners. *)
  let grid =
    List.concat_map
      (fun nt ->
        List.map
          (fun il ->
            {
              Schedule.default with
              tile_size = nt;
              interleave = il;
              layout = (if nt >= 4 then Schedule.Sparse_layout else Schedule.Array_layout);
            })
          [ 1; 8 ])
      [ 1; 8 ]
  in
  let ex = Explore.exhaustive ~target ~grid forest rows in
  check_int "all evaluated" (List.length grid) ex.Explore.evaluated;
  List.iter
    (fun s ->
      let p = Explore.evaluate ~target forest s rows in
      check_bool "best is min" true
        (ex.Explore.perf.Perf.cycles_per_row <= p.Perf.cycles_per_row +. 1e-6))
    grid

let test_explore_schedule_valid () =
  let forest, rows = biased_forest_and_rows 14 in
  let r = Explore.greedy ~target:Config.amd_ryzen7 forest rows in
  check_bool "valid schedule" true (Schedule.validate r.Explore.schedule = Ok ())

let suite =
  [
    quick "compile/predict equivalence" test_compile_predict_equivalence;
    quick "predict one" test_predict_one;
    quick "explicit schedule" test_compile_explicit_schedule;
    quick "of_file" test_of_file;
    quick "dump ir" test_dump_ir_nonempty;
    quick "compile_auto equivalence" test_compile_auto_equivalence;
    quick "perf simulate basic" test_perf_simulate_basic;
    quick "perf thread speedup" test_perf_threads_speedup;
    quick "perf stable across batch" test_perf_batch_scaling_stable;
    quick "perf rejects empty rows" test_perf_empty_rows_rejected;
    quick "greedy beats baseline" test_greedy_beats_baseline;
    quick "exhaustive finds grid minimum" test_exhaustive_no_worse_than_greedy;
    quick "explored schedule is valid" test_explore_schedule_valid;
  ]
