open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Model_stats = Tb_model.Model_stats
module Schedule = Tb_hir.Schedule
module Layout = Tb_lir.Layout
module Lower = Tb_lir.Lower
module Jit = Tb_vm.Jit
module Profiler = Tb_vm.Profiler
module Config = Tb_cpu.Config
module Cost_model = Tb_cpu.Cost_model
module Cache = Tb_cpu.Cache

(* The central semantic property of the whole compiler: every combination
   of schedule knobs produces a predictor equal to the reference. *)

let random_schedule rng =
  {
    Schedule.scalar_baseline with
    tile_size = 1 + Prng.int rng 8;
    tiling =
      (if Prng.bool rng then Schedule.Basic else Schedule.Probability_based);
    loop_order =
      (if Prng.bool rng then Schedule.One_tree_at_a_time
       else Schedule.One_row_at_a_time);
    pad_and_unroll = Prng.bool rng;
    peel = Prng.bool rng;
    interleave = 1 lsl Prng.int rng 4;
    layout = (if Prng.bool rng then Schedule.Sparse_layout else Schedule.Array_layout);
    num_threads = 1 + Prng.int rng 4;
  }

let jit_equivalence_property seed =
  let rng = Prng.create seed in
  let forest = Forest.random ~num_trees:(2 + Prng.int rng 12) ~max_depth:7 ~num_features:6 rng in
  let schedule = random_schedule rng in
  let rows = random_rows rng 6 (1 + Prng.int rng 40) in
  let profiles =
    if Prng.bool rng then Some (Model_stats.profile_forest forest rows) else None
  in
  let lp = Lower.lower ?profiles forest schedule in
  let predict = Jit.compile lp in
  let out = predict rows in
  let expected = Forest.predict_batch_raw forest rows in
  (Array.for_all2 (fun a b -> arrays_close a b) out expected)
  || QCheck2.Test.fail_reportf "JIT diverges: %s" (Schedule.to_string schedule)

let test_jit_multiclass () =
  let rng = Prng.create 11 in
  let trees = Array.init 9 (fun _ -> Tb_model.Tree.random ~max_depth:5 ~num_features:5 rng) in
  let forest = Forest.make ~task:(Forest.Multiclass 3) ~num_features:5 trees in
  let rows = random_rows rng 5 64 in
  List.iter
    (fun schedule ->
      let predict = Jit.compile (Lower.lower forest schedule) in
      let out = predict rows in
      let expected = Forest.predict_batch_raw forest rows in
      check_bool "multiclass equal" true (Array.for_all2 arrays_close out expected))
    [ Schedule.scalar_baseline; Schedule.default ]

let test_jit_empty_batch () =
  let forest = Forest.random ~num_trees:3 (Prng.create 12) in
  let predict = Jit.compile (Lower.lower forest Schedule.default) in
  check_int "empty output" 0 (Array.length (predict [||]))

let test_jit_batch_not_multiple_of_interleave () =
  let rng = Prng.create 13 in
  let forest = Forest.random ~num_trees:5 ~num_features:6 rng in
  let schedule = { Schedule.default with interleave = 8 } in
  let predict = Jit.compile (Lower.lower forest schedule) in
  (* 13 rows: 8 + 5 remainder. *)
  let rows = random_rows rng 6 13 in
  let out = predict rows in
  let expected = Forest.predict_batch_raw forest rows in
  check_bool "remainder handled" true (Array.for_all2 arrays_close out expected)

let test_jit_parallel_matches_sequential () =
  let rng = Prng.create 14 in
  let forest = Forest.random ~num_trees:10 ~num_features:6 rng in
  let rows = random_rows rng 6 257 in
  let seq = Jit.compile (Lower.lower forest Schedule.default) rows in
  let par =
    Jit.compile (Lower.lower forest (Schedule.with_threads Schedule.default 4)) rows
  in
  check_bool "parallel == sequential" true (Array.for_all2 arrays_close seq par)

let test_jit_parallel_more_threads_than_rows () =
  let rng = Prng.create 15 in
  let forest = Forest.random ~num_trees:4 ~num_features:6 rng in
  let rows = random_rows rng 6 3 in
  let out = Jit.compile (Lower.lower forest (Schedule.with_threads Schedule.default 8)) rows in
  let expected = Forest.predict_batch_raw forest rows in
  check_bool "tiny batch" true (Array.for_all2 arrays_close out expected)

let test_jit_single_leaf_forest () =
  let forest =
    Forest.make ~task:Forest.Regression ~num_features:1
      [| Tb_model.Tree.Leaf 2.0; Tb_model.Tree.Leaf 3.0 |]
  in
  List.iter
    (fun schedule ->
      let out = Jit.compile (Lower.lower forest schedule) [| [| 0.0 |] |] in
      check_float "constant forest" 5.0 out.(0).(0))
    [ Schedule.scalar_baseline; Schedule.default ]

(* Profiler *)

let profile_of ?(schedule = Schedule.default) ?(rows = 32) seed =
  let rng = Prng.create seed in
  let forest = Forest.random ~num_trees:10 ~max_depth:7 ~num_features:6 rng in
  let lp = Lower.lower forest schedule in
  let data = random_rows rng 6 rows in
  (lp, Profiler.profile ~target:Config.intel_rocket_lake lp data)

let test_profiler_counts_walks () =
  let _, w = profile_of ~rows:32 21 in
  check_int "one walk per (tree,row)" (10 * 32)
    (w.Cost_model.walks_checked + w.Cost_model.walks_unrolled);
  check_int "one leaf fetch per walk" (10 * 32) w.Cost_model.leaf_fetches

let test_profiler_steps_positive () =
  let _, w = profile_of 22 in
  check_bool "steps counted" true
    (w.Cost_model.steps_checked + w.Cost_model.steps_unchecked > 0);
  check_bool "cache accessed" true (w.Cost_model.l1.Cache.accesses > 0)

let test_profiler_unrolled_schedule_has_unchecked_steps () =
  let _, w =
    profile_of ~schedule:{ Schedule.default with interleave = 1 } 23
  in
  check_bool "unrolled steps exist" true (w.Cost_model.steps_unchecked > 0)

let test_profiler_scalar_baseline_all_checked () =
  let _, w = profile_of ~schedule:Schedule.scalar_baseline 24 in
  check_int "no unrolled walks" 0 w.Cost_model.walks_unrolled;
  check_int "no unchecked steps" 0 w.Cost_model.steps_unchecked

let test_profiler_interleave_reduces_critical_steps () =
  let base = { Schedule.default with pad_and_unroll = false; peel = false } in
  let _, w1 = profile_of ~schedule:{ base with interleave = 1 } 25 in
  let _, w8 = profile_of ~schedule:{ base with interleave = 8 } 25 in
  check_int "same total steps" w1.Cost_model.steps_checked w8.Cost_model.steps_checked;
  check_bool "jam shortens critical path" true
    (w8.Cost_model.critical_steps < w1.Cost_model.critical_steps);
  check_bool "critical at least total/8" true
    (w8.Cost_model.critical_steps * 8 >= w1.Cost_model.critical_steps)

let test_profiler_tree_major_improves_cache () =
  (* One-tree-at-a-time reuses the tree across rows: strictly fewer misses
     than row-major on a model larger than L1. *)
  let rng = Prng.create 26 in
  let forest = Forest.random ~num_trees:120 ~max_depth:7 ~num_features:6 rng in
  let data = random_rows rng 6 64 in
  let miss order =
    let lp =
      Lower.lower forest { Schedule.scalar_baseline with loop_order = order }
    in
    (Profiler.profile ~target:Config.intel_rocket_lake lp data).Cost_model.l1.Cache.misses
  in
  check_bool "tree-major fewer misses" true
    (miss Schedule.One_tree_at_a_time < miss Schedule.One_row_at_a_time)

let test_profiler_scale () =
  let _, w = profile_of 27 in
  let w2 = Profiler.scale w 2.0 in
  check_int "rows doubled" (2 * w.Cost_model.rows) w2.Cost_model.rows;
  check_int "misses doubled" (2 * w.Cost_model.l1.Cache.misses)
    w2.Cost_model.l1.Cache.misses;
  check_int "tile size unchanged" w.Cost_model.tile_size w2.Cost_model.tile_size

let test_profiler_extrapolate_closes_miss_gap () =
  (* Tree-major over a model larger than L1: the per-batch model stream is
     a fixed miss cost, so linear scaling of a 48-row sample overstates a
     256-row batch's misses severalfold (the C002 shape). The affine
     two-point fit must land within the C002 tolerance of the instrumented
     cold run, and strictly beat linear scaling. *)
  let rng = Prng.create 29 in
  let forest = Forest.random ~num_trees:120 ~max_depth:7 ~num_features:6 rng in
  let data = random_rows rng 6 256 in
  let sched = { Schedule.default with loop_order = Schedule.One_tree_at_a_time } in
  let lp = Lower.lower forest sched in
  let target = Config.intel_rocket_lake in
  let truth = Profiler.profile ~target lp data in
  let w1 = Profiler.profile ~target lp (Array.sub data 0 48) in
  let w2 = Profiler.profile ~target lp (Array.sub data 0 96) in
  let affine = Profiler.extrapolate w1 w2 ~rows:256 in
  let linear = Profiler.scale w1 (256.0 /. 48.0) in
  let rel w =
    let m = float_of_int w.Cost_model.l1.Cache.misses in
    let t = float_of_int truth.Cost_model.l1.Cache.misses in
    Float.abs (m -. t) /. t
  in
  check_int "rows" 256 affine.Cost_model.rows;
  check_bool "affine within C002 tolerance" true (rel affine < 0.25);
  check_bool "affine beats linear" true (rel affine < rel linear);
  check_bool "misses <= accesses" true
    (affine.Cost_model.l1.Cache.misses <= affine.Cost_model.l1.Cache.accesses);
  check_int "hits consistent"
    (affine.Cost_model.l1.Cache.accesses - affine.Cost_model.l1.Cache.misses)
    affine.Cost_model.l1.Cache.hits

let test_profiler_extrapolate_rejects_bad_points () =
  let _, w = profile_of ~rows:32 30 in
  let small = { w with Cost_model.rows = 16 } in
  check_bool "equal rows rejected" true
    (match Profiler.extrapolate w w ~rows:64 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "order matters" true
    (match Profiler.extrapolate w small ~rows:64 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_profiler_deterministic () =
  (* Same program, same rows -> the exact same workload, cache state and
     all. The calibration lint (Cost_check) relies on this: any predicted/
     measured divergence must come from extrapolation, never from the
     profiler itself. *)
  let rng = Prng.create 28 in
  let forest = Forest.random ~num_trees:10 ~max_depth:7 ~num_features:6 rng in
  let data = random_rows rng 6 48 in
  List.iter
    (fun schedule ->
      let lp = Lower.lower forest schedule in
      let w1 = Profiler.profile ~target:Config.intel_rocket_lake lp data in
      let w2 = Profiler.profile ~target:Config.intel_rocket_lake lp data in
      check_bool (Schedule.to_string schedule) true (w1 = w2))
    [ Schedule.scalar_baseline; Schedule.default;
      { Schedule.default with layout = Schedule.Array_layout } ]

let profiler_scale_property seed =
  let rng = Prng.create seed in
  let schedule = random_schedule rng in
  let _, w = profile_of ~schedule ~rows:(8 + Prng.int rng 24) seed in
  let k = 1 + Prng.int rng 9 in
  let w' = Profiler.scale w (float_of_int k) in
  (* Extensive counts are multiplied exactly (integer factor, so no
     rounding slack); intensive/structural fields are untouched. *)
  w'.Cost_model.rows = k * w.Cost_model.rows
  && w'.Cost_model.walks_checked = k * w.Cost_model.walks_checked
  && w'.Cost_model.walks_unrolled = k * w.Cost_model.walks_unrolled
  && w'.Cost_model.steps_checked = k * w.Cost_model.steps_checked
  && w'.Cost_model.steps_unchecked = k * w.Cost_model.steps_unchecked
  && w'.Cost_model.leaf_fetches = k * w.Cost_model.leaf_fetches
  && w'.Cost_model.critical_steps = k * w.Cost_model.critical_steps
  && w'.Cost_model.l1.Cache.accesses = k * w.Cost_model.l1.Cache.accesses
  && w'.Cost_model.l1.Cache.misses = k * w.Cost_model.l1.Cache.misses
  && w'.Cost_model.l1.Cache.hits = k * w.Cost_model.l1.Cache.hits
  && w'.Cost_model.tile_size = w.Cost_model.tile_size
  && w'.Cost_model.layout = w.Cost_model.layout
  && w'.Cost_model.code_bytes = w.Cost_model.code_bytes
  && w'.Cost_model.model_bytes = w.Cost_model.model_bytes

(* Cost model / cache / multicore *)

let test_cache_basics () =
  let c = Cache.create ~line_bytes:64 ~ways:2 ~size_bytes:1024 () in
  check_bool "first access misses" false (Cache.access c 0);
  check_bool "second access hits" true (Cache.access c 32);
  (* 8 sets; addresses 0, 1024, 2048 map to set 0 (line 0,16,32... wait
     1024/64=16 lines, 16 mod 8 = 0). Two ways: third distinct line evicts
     LRU. *)
  ignore (Cache.access c 1024);
  ignore (Cache.access c 2048);
  check_bool "original line evicted" false (Cache.access c 0)

let test_cache_stats_consistent () =
  let c = Cache.create ~size_bytes:4096 () in
  for i = 0 to 999 do
    ignore (Cache.access c (i * 8))
  done;
  let s = Cache.stats c in
  check_int "accesses" 1000 s.Cache.accesses;
  check_int "hits+misses" 1000 (s.Cache.hits + s.Cache.misses);
  Cache.reset c;
  check_int "reset" 0 (Cache.stats c).Cache.accesses

let test_cost_model_interleave_cuts_core_stalls () =
  let base = { Schedule.default with pad_and_unroll = false; peel = false } in
  let breakdown il seed =
    let lp, w = profile_of ~schedule:{ base with interleave = il } seed in
    ignore lp;
    Cost_model.estimate Config.intel_rocket_lake w
  in
  let b1 = breakdown 1 30 and b8 = breakdown 8 30 in
  check_bool "interleaving reduces core stalls" true
    (b8.Cost_model.backend_core < b1.Cost_model.backend_core);
  check_bool "interleaving reduces cycles" true (b8.Cost_model.cycles < b1.Cost_model.cycles)

let test_cost_model_gather_hurts_amd () =
  let lp, w = profile_of ~schedule:{ Schedule.default with tile_size = 8 } 31 in
  ignore lp;
  let intel = Cost_model.estimate Config.intel_rocket_lake w in
  let amd = Cost_model.estimate Config.amd_ryzen7 w in
  check_bool "amd pays more for gathers" true
    (amd.Cost_model.cycles > intel.Cost_model.cycles)

let test_cost_model_scalar_has_bad_speculation () =
  let _, w = profile_of ~schedule:Schedule.scalar_baseline 32 in
  let b = Cost_model.estimate Config.intel_rocket_lake w in
  check_bool "mispredicts charged" true (b.Cost_model.bad_speculation > 0.0)

let test_cost_model_frontend_kicks_in_on_huge_code () =
  let _, w = profile_of 33 in
  let small = Cost_model.estimate Config.intel_rocket_lake w in
  let huge =
    Cost_model.estimate Config.intel_rocket_lake
      { w with Cost_model.code_bytes = 4 * 1024 * 1024 }
  in
  check_float "no frontend stalls on small code" 0.0 small.Cost_model.frontend;
  check_bool "frontend stalls on huge code" true (huge.Cost_model.frontend > 0.0)

let test_multicore_speedup_monotone () =
  let cfg = Config.intel_rocket_lake in
  let s n = Tb_cpu.Multicore.speedup cfg ~threads:n () in
  check_float "1 thread" 1.0 (s 1);
  check_bool "monotone" true (s 2 > s 1 && s 4 > s 2 && s 8 > s 4 && s 16 > s 8);
  check_bool "smt bounded" true (s 16 < 16.0);
  check_bool "8 cores near 8x" true (s 8 > 6.0)

let test_multicore_effective_core_cap () =
  let cfg = Config.intel_rocket_lake in
  let capped = Tb_cpu.Multicore.speedup cfg ~max_effective_cores:3 ~threads:16 () in
  check_bool "cap respected" true (capped <= 3.0)

let suite =
  [
    qcheck ~count:150 ~name:"JIT == reference for random schedules" seed_gen
      jit_equivalence_property;
    quick "jit multiclass" test_jit_multiclass;
    quick "jit empty batch" test_jit_empty_batch;
    quick "jit interleave remainder" test_jit_batch_not_multiple_of_interleave;
    quick "jit parallel == sequential" test_jit_parallel_matches_sequential;
    quick "jit more threads than rows" test_jit_parallel_more_threads_than_rows;
    quick "jit constant forest" test_jit_single_leaf_forest;
    quick "profiler counts walks" test_profiler_counts_walks;
    quick "profiler counts steps and cache" test_profiler_steps_positive;
    quick "profiler sees unrolled steps" test_profiler_unrolled_schedule_has_unchecked_steps;
    quick "profiler scalar all checked" test_profiler_scalar_baseline_all_checked;
    quick "interleave shortens critical path" test_profiler_interleave_reduces_critical_steps;
    quick "tree-major improves cache" test_profiler_tree_major_improves_cache;
    quick "profiler scaling" test_profiler_scale;
    quick "affine extrapolation closes miss gap" test_profiler_extrapolate_closes_miss_gap;
    quick "extrapolation rejects bad points" test_profiler_extrapolate_rejects_bad_points;
    quick "profiler is deterministic" test_profiler_deterministic;
    qcheck ~count:75 ~name:"scale multiplies extensive counts exactly"
      seed_gen profiler_scale_property;
    quick "cache basics" test_cache_basics;
    quick "cache stats consistent" test_cache_stats_consistent;
    quick "interleaving cuts core stalls" test_cost_model_interleave_cuts_core_stalls;
    quick "gather hurts amd" test_cost_model_gather_hurts_amd;
    quick "scalar pays bad speculation" test_cost_model_scalar_has_bad_speculation;
    quick "frontend stalls on huge code" test_cost_model_frontend_kicks_in_on_huge_code;
    quick "multicore speedup monotone" test_multicore_speedup_monotone;
    quick "multicore effective-core cap" test_multicore_effective_core_cap;
  ]
