open Helpers
module Prng = Tb_util.Prng
module Stats = Tb_util.Stats
module Json = Tb_util.Json
module Table = Tb_util.Table

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  check_bool "split differs from parent"
    false
    (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_int_range () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_prng_uniform_range () =
  let rng = Prng.create 2 in
  for _ = 1 to 1000 do
    let v = Prng.uniform rng in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_uniform_mean () =
  let rng = Prng.create 3 in
  let xs = Array.init 10_000 (fun _ -> Prng.uniform rng) in
  check_bool "mean near 0.5" true (Float.abs (Stats.mean xs -. 0.5) < 0.02)

let test_prng_gaussian_moments () =
  let rng = Prng.create 4 in
  let xs = Array.init 20_000 (fun _ -> Prng.gaussian rng) in
  check_bool "mean near 0" true (Float.abs (Stats.mean xs) < 0.03);
  check_bool "stddev near 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.03)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_stats_mean () = check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_geomean_empty () = check_float "empty" 0.0 (Stats.geomean [||])

let test_stats_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_stats_percentile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.percentile xs 0.5);
  check_float "min" 1.0 (Stats.percentile xs 0.0);
  check_float "max" 4.0 (Stats.percentile xs 1.0)

let test_stats_argminmax () =
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  check_int "argmax" 4 (Stats.argmax xs);
  check_int "argmin" 1 (Stats.argmin xs)

let test_stats_kahan_sum () =
  (* 1 + 1e-16 * 10^8 would lose mass under naive summation. *)
  let xs = Array.make 10_000_001 1e-8 in
  xs.(0) <- 1.0;
  check_bool "kahan keeps precision" true
    (Float.abs (Stats.sum xs -. 1.1) < 1e-9)

let test_stats_neumaier_sum () =
  (* The adversarial cancellation vector: the incoming 1e100 dwarfs the
     running total, so plain Kahan loses the total's low bits and
     returns 0; Neumaier's branch compensates the other way round. *)
  let xs = [| 1.0; 1e100; 1.0; -1e100 |] in
  check_float "neumaier survives cancellation" 2.0 (Stats.neumaier_sum xs);
  check_bool "plain kahan loses the mass here" true
    (Stats.sum xs <> 2.0);
  (* Agrees with Kahan on the benign case. *)
  let ys = Array.make 10_000_001 1e-8 in
  ys.(0) <- 1.0;
  check_bool "benign case matches kahan" true
    (Float.abs (Stats.neumaier_sum ys -. 1.1) < 1e-9);
  check_float "empty" 0.0 (Stats.neumaier_sum [||]);
  (* Exact cancellation of permuted magnitudes. *)
  check_float "signed magnitudes cancel" 0.0
    (Stats.neumaier_sum [| 1e50; 3.5; -1e50; 2.5; -6.0 |])

let json_roundtrip j =
  Json.of_string (Json.to_string j)

let test_json_roundtrip_basic () =
  let j =
    Json.Obj
      [
        ("a", Json.Num 1.5);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Str "x\"y\n" ]);
        ("c", Json.Obj []);
        ("d", Json.Num (-0.0625));
      ]
  in
  check_bool "roundtrip" true (json_roundtrip j = j)

let test_json_float_precision () =
  let v = 0.1 +. 0.2 in
  match json_roundtrip (Json.Num v) with
  | Json.Num v' -> check_float "exact float" v v'
  | _ -> Alcotest.fail "expected number"

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" s)
    [ "{"; "[1,"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}"; "" ]

let test_json_indent_parses () =
  let j = Json.Obj [ ("xs", Json.List [ Json.Num 1.0; Json.Num 2.0 ]) ] in
  check_bool "indented output parses" true
    (Json.of_string (Json.to_string ~indent:true j) = j)

let test_json_accessors () =
  let j = Json.of_string {|{"n": 3, "s": "hi", "l": [1], "b": false}|} in
  check_int "int" 3 Json.(to_int (member "n" j));
  check_string "str" "hi" Json.(to_str (member "s" j));
  check_int "list" 1 (List.length Json.(to_list (member "l" j)));
  check_bool "bool" false Json.(to_bool (member "b" j));
  Alcotest.check_raises "missing member" (Json.Parse_error "missing field \"zz\"")
    (fun () -> ignore (Json.member "zz" j))

let test_json_unicode_escape () =
  match Json.of_string {|"Aé"|} with
  | Json.Str s -> check_string "utf8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "expected string"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "x"; "1.00" ];
  Table.add_sep t;
  Table.add_row t [ "longer-name"; "2.50" ];
  let s = Table.render t in
  check_bool "contains header" true
    (String.length s > 0 && contains s "name" && contains s "longer-name")

let test_table_rejects_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_timer_measures () =
  let r = Tb_util.Timer.measure ~warmup:0 ~min_iters:3 ~min_time_s:0.0 (fun () -> ()) in
  check_bool "iterations" true (r.iterations >= 3);
  check_bool "mean nonneg" true (r.mean_s >= 0.0)

let suite =
  [
    quick "prng deterministic" test_prng_deterministic;
    quick "prng split independent" test_prng_split_independent;
    quick "prng int range" test_prng_int_range;
    quick "prng uniform range" test_prng_uniform_range;
    quick "prng uniform mean" test_prng_uniform_mean;
    quick "prng gaussian moments" test_prng_gaussian_moments;
    quick "prng shuffle permutation" test_prng_shuffle_permutation;
    quick "stats mean" test_stats_mean;
    quick "stats geomean" test_stats_geomean;
    quick "stats geomean empty" test_stats_geomean_empty;
    quick "stats geomean rejects nonpositive" test_stats_geomean_rejects_nonpositive;
    quick "stats percentile" test_stats_percentile;
    quick "stats argmin/argmax" test_stats_argminmax;
    quick "stats kahan sum" test_stats_kahan_sum;
    quick "stats neumaier sum" test_stats_neumaier_sum;
    quick "json roundtrip basic" test_json_roundtrip_basic;
    quick "json float precision" test_json_float_precision;
    quick "json parse errors" test_json_parse_errors;
    quick "json indented output parses" test_json_indent_parses;
    quick "json accessors" test_json_accessors;
    quick "json unicode escape" test_json_unicode_escape;
    quick "table render" test_table_render;
    quick "table rejects mismatch" test_table_rejects_mismatch;
    quick "timer measures" test_timer_measures;
  ]
