(* Interop surfaces: the XGBoost dump importer and schedule JSON files. *)

open Helpers
module Prng = Tb_util.Prng
module Json = Tb_util.Json
module Forest = Tb_model.Forest
module Tree = Tb_model.Tree
module Xgb_import = Tb_model.Xgb_import
module Schedule = Tb_hir.Schedule

(* A hand-written dump in XGBoost's format: two stumps and a depth-2
   tree, children deliberately listed no-before-yes to test id routing. *)
let sample_dump =
  {|[
  { "nodeid": 0, "depth": 0, "split": "f2", "split_condition": 0.5,
    "yes": 1, "no": 2, "missing": 1,
    "children": [
      { "nodeid": 2, "leaf": -0.25 },
      { "nodeid": 1, "leaf": 0.75 }
    ] },
  { "nodeid": 0, "depth": 0, "split": "f0", "split_condition": -1.5,
    "yes": 1, "no": 2, "missing": 1,
    "children": [
      { "nodeid": 1, "depth": 1, "split": "f1", "split_condition": 3.0,
        "yes": 3, "no": 4, "missing": 3,
        "children": [
          { "nodeid": 4, "leaf": 0.2 },
          { "nodeid": 3, "leaf": 0.1 }
        ] },
      { "nodeid": 2, "leaf": 0.3 }
    ] }
]|}

let test_import_structure () =
  let f = Xgb_import.of_dump_string sample_dump in
  check_int "two trees" 2 (Array.length f.Forest.trees);
  check_int "features inferred" 3 f.Forest.num_features;
  check_int "depth" 2 (Forest.max_depth f)

let test_import_semantics () =
  let f = Xgb_import.of_dump_string sample_dump in
  (* row with f2 < 0.5 -> yes branch of tree 1 (0.75); f0 < -1.5 and
     f1 < 3.0 -> 0.1 in tree 2. *)
  check_float "yes/yes" (0.75 +. 0.1) (Forest.predict_single f [| -2.0; 0.0; 0.0 |]);
  (* f2 >= 0.5 -> -0.25; f0 >= -1.5 -> 0.3 *)
  check_float "no/no" (-0.25 +. 0.3) (Forest.predict_single f [| 0.0; 0.0; 1.0 |]);
  (* f1 >= 3.0 on the yes side of tree 2 -> 0.2 *)
  check_float "yes/no-inner" (0.75 +. 0.2) (Forest.predict_single f [| -2.0; 5.0; 0.0 |])

let test_import_feature_names () =
  let dump =
    {|[ { "nodeid": 0, "split": "age", "split_condition": 30,
         "yes": 1, "no": 2,
         "children": [ { "nodeid": 1, "leaf": 1 }, { "nodeid": 2, "leaf": 2 } ] } ]|}
  in
  let f = Xgb_import.of_dump_string ~feature_names:[ "income"; "age" ] dump in
  check_float "named feature" 1.0 (Forest.predict_single f [| 0.0; 20.0 |]);
  check_float "named feature right" 2.0 (Forest.predict_single f [| 0.0; 40.0 |])

let test_import_rejects_unknown_split () =
  let dump =
    {|[ { "nodeid": 0, "split": "mystery", "split_condition": 1,
         "yes": 1, "no": 2,
         "children": [ { "nodeid": 1, "leaf": 1 }, { "nodeid": 2, "leaf": 2 } ] } ]|}
  in
  check_bool "raises" true
    (match Xgb_import.of_dump_string dump with
    | exception Json.Parse_error _ -> true
    | (_ : Forest.t) -> false)

let test_import_rejects_missing_child () =
  let dump =
    {|[ { "nodeid": 0, "split": "f0", "split_condition": 1,
         "yes": 1, "no": 7,
         "children": [ { "nodeid": 1, "leaf": 1 } ] } ]|}
  in
  check_bool "raises" true
    (match Xgb_import.of_dump_string dump with
    | exception Json.Parse_error _ -> true
    | (_ : Forest.t) -> false)

let test_imported_model_compiles () =
  let f = Xgb_import.of_dump_string sample_dump in
  let rng = Prng.create 1 in
  let rows = random_rows rng 3 32 in
  let compiled = Tb_core.Treebeard.make (`Forest f) in
  check_bool "compiled import correct" true
    (Array.for_all2 arrays_close
       (Tb_core.Treebeard.predict_forest compiled rows)
       (Forest.predict_batch_raw f rows))

(* Schedule JSON *)

let test_schedule_roundtrip () =
  List.iter
    (fun s ->
      let s' = Schedule.of_json (Schedule.to_json s) in
      check_bool ("roundtrip " ^ Schedule.to_string s) true (s = s'))
    (Schedule.scalar_baseline :: Schedule.default
    :: [
         { Schedule.default with tiling = Schedule.Optimal_probability_based };
         { Schedule.default with tiling = Schedule.Min_max_depth; num_threads = 7 };
         { Schedule.default with loop_order = Schedule.One_row_at_a_time; alpha = 0.05 };
       ])

let test_schedule_file_roundtrip () =
  let path = Filename.temp_file "tb_sched" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule.to_file path Schedule.default;
      check_bool "file roundtrip" true (Schedule.of_file path = Schedule.default))

let test_schedule_rejects_garbage () =
  check_bool "raises" true
    (match Schedule.of_json (Json.of_string {|{"tiling": "nope"}|}) with
    | exception Json.Parse_error _ -> true
    | (_ : Schedule.t) -> false)

let test_grid_schedules_roundtrip () =
  List.iter
    (fun s ->
      check_bool "grid roundtrip" true (Schedule.of_json (Schedule.to_json s) = s))
    Schedule.table2_grid

let suite =
  [
    quick "xgboost import structure" test_import_structure;
    quick "xgboost import semantics" test_import_semantics;
    quick "xgboost import feature names" test_import_feature_names;
    quick "xgboost import rejects unknown split" test_import_rejects_unknown_split;
    quick "xgboost import rejects missing child" test_import_rejects_missing_child;
    quick "imported model compiles" test_imported_model_compiles;
    quick "schedule json roundtrip" test_schedule_roundtrip;
    quick "schedule file roundtrip" test_schedule_file_roundtrip;
    quick "schedule rejects garbage" test_schedule_rejects_garbage;
    quick "all grid schedules roundtrip" test_grid_schedules_roundtrip;
  ]
