open Helpers
module Prng = Tb_util.Prng
module Dataset = Tb_data.Dataset
module Generators = Tb_data.Generators
module Forest = Tb_model.Forest
module Binning = Tb_gbt.Binning
module Loss = Tb_gbt.Loss
module Tree_builder = Tb_gbt.Tree_builder
module Train = Tb_gbt.Train
module Zoo = Tb_gbt.Zoo

(* Binning *)

let test_binning_simple_column () =
  let rows = Array.map (fun v -> [| v |]) [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Binning.create ~max_bins:8 rows in
  check_int "4 bins" 4 (Binning.num_bins b 0);
  (* Bins must be ordered with values. *)
  let bins = Array.map (fun r -> b.Binning.binned.(0).(r)) [| 0; 1; 2; 3 |] in
  Alcotest.(check (array int)) "ordered bins" [| 0; 1; 2; 3 |] bins

let test_binning_constant_column () =
  let rows = Array.make 10 [| 5.0 |] in
  let b = Binning.create rows in
  check_int "single bin" 1 (Binning.num_bins b 0)

let test_binning_equal_values_share_bin () =
  let rows = Array.map (fun v -> [| v |]) (Array.init 100 (fun i -> float_of_int (i mod 3))) in
  let b = Binning.create ~max_bins:2 rows in
  (* However coarse, equal raw values must never straddle a cut. *)
  for i = 0 to 99 do
    for j = 0 to 99 do
      if rows.(i).(0) = rows.(j).(0) then
        check_int "same value same bin" b.Binning.binned.(0).(i) b.Binning.binned.(0).(j)
    done
  done

let test_binning_threshold_separates () =
  let rows = Array.map (fun v -> [| v |]) [| 1.0; 2.0; 5.0; 9.0 |] in
  let b = Binning.create rows in
  for bin = 0 to Binning.num_bins b 0 - 2 do
    let thr = Binning.threshold_of_bin b ~feature:0 ~bin in
    Array.iteri
      (fun r row ->
        let goes_left = row.(0) < thr in
        let in_left_bins = b.Binning.binned.(0).(r) <= bin in
        check_bool "threshold consistent with bins" in_left_bins goes_left)
      rows
  done

let test_binning_bin_of_value () =
  let rows = Array.map (fun v -> [| v |]) [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Binning.create rows in
  Array.iteri
    (fun r row ->
      check_int "bin_of_value matches" b.Binning.binned.(0).(r)
        (Binning.bin_of_value b ~feature:0 row.(0)))
    rows

let test_binning_respects_max_bins () =
  let rng = Prng.create 1 in
  let rows = Array.init 1000 (fun _ -> [| Prng.uniform rng |]) in
  let b = Binning.create ~max_bins:16 rows in
  check_bool "at most 16" true (Binning.num_bins b 0 <= 16)

(* Loss *)

let test_squared_loss () =
  let g, h = Loss.squared.Loss.grad_hess ~pred:3.0 ~label:1.0 in
  check_float "grad" 2.0 g;
  check_float "hess" 1.0 h;
  check_float "base" 2.0 (Loss.squared.Loss.base_score ~labels:[| 1.0; 3.0 |])

let test_logistic_loss_gradients () =
  let g0, h0 = Loss.logistic.Loss.grad_hess ~pred:0.0 ~label:1.0 in
  check_float "grad at 0 pos" (-0.5) g0;
  check_float "hess at 0" 0.25 h0;
  let g1, _ = Loss.logistic.Loss.grad_hess ~pred:0.0 ~label:0.0 in
  check_float "grad at 0 neg" 0.5 g1

let test_logistic_base_score_sign () =
  check_bool "mostly positive -> positive base" true
    (Loss.logistic.Loss.base_score ~labels:[| 1.0; 1.0; 1.0; 0.0 |] > 0.0);
  check_bool "mostly negative -> negative base" true
    (Loss.logistic.Loss.base_score ~labels:[| 0.0; 0.0; 0.0; 1.0 |] < 0.0)

let test_one_vs_rest_targets () =
  let l = Loss.one_vs_rest ~target_class:2 in
  let g_pos, _ = l.Loss.grad_hess ~pred:0.0 ~label:2.0 in
  let g_neg, _ = l.Loss.grad_hess ~pred:0.0 ~label:1.0 in
  check_float "target class acts positive" (-0.5) g_pos;
  check_float "other class acts negative" 0.5 g_neg

(* Tree builder *)

let xor_dataset () =
  (* y = x0 xor x1 — needs depth 2. *)
  let feats = [| [| 0.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 0.0 |]; [| 1.0; 1.0 |] |] in
  let labels = [| 0.0; 1.0; 1.0; 0.0 |] in
  (feats, labels)

let test_tree_builder_fits_step () =
  (* A single split suffices for a step function. *)
  let feats = Array.init 100 (fun i -> [| float_of_int i |]) in
  let labels = Array.init 100 (fun i -> if i < 50 then -1.0 else 1.0) in
  let b = Binning.create ~max_bins:128 feats in
  let grad = Array.map (fun l -> -.l) labels in
  let hess = Array.make 100 1.0 in
  let params =
    { Tree_builder.default_params with max_depth = 3; leaf_scale = 1.0; lambda = 0.0 }
  in
  let tree =
    Tree_builder.build params b ~grad ~hess ~rows:(Array.init 100 Fun.id)
      ~rng:(Prng.create 1)
  in
  Array.iteri
    (fun i row ->
      let p = Tb_model.Tree.predict tree row in
      check_bool
        (Printf.sprintf "row %d sign" i)
        true
        (Float.abs (p -. labels.(i)) < 0.2))
    feats

let test_tree_builder_respects_depth () =
  let rng = Prng.create 2 in
  let feats = Array.init 200 (fun _ -> [| Prng.uniform rng; Prng.uniform rng |]) in
  let labels = Array.init 200 (fun _ -> Prng.uniform rng) in
  let b = Binning.create feats in
  let grad = Array.map (fun l -> -.l) labels in
  let hess = Array.make 200 1.0 in
  let params = { Tree_builder.default_params with max_depth = 3; min_child_weight = 0.0 } in
  let tree =
    Tree_builder.build params b ~grad ~hess ~rows:(Array.init 200 Fun.id)
      ~rng:(Prng.create 3)
  in
  check_bool "depth bounded" true (Tb_model.Tree.depth tree <= 3)

let test_tree_builder_pure_node_is_leaf () =
  (* Constant gradient -> no split has gain -> single leaf. *)
  let feats = Array.init 50 (fun i -> [| float_of_int i |]) in
  let b = Binning.create feats in
  let grad = Array.make 50 1.0 in
  let hess = Array.make 50 1.0 in
  let tree =
    Tree_builder.build Tree_builder.default_params b ~grad ~hess
      ~rows:(Array.init 50 Fun.id) ~rng:(Prng.create 4)
  in
  check_int "no split" 0 (Tb_model.Tree.num_nodes tree)

let test_tree_builder_leaf_value_newton () =
  let feats = Array.init 10 (fun i -> [| float_of_int i |]) in
  let b = Binning.create feats in
  let grad = Array.make 10 2.0 in
  let hess = Array.make 10 1.0 in
  let params = { Tree_builder.default_params with lambda = 0.0; leaf_scale = 1.0 } in
  let tree =
    Tree_builder.build params b ~grad ~hess ~rows:(Array.init 10 Fun.id)
      ~rng:(Prng.create 5)
  in
  (* w = -G/H = -20/10 = -2 *)
  check_float "newton step" (-2.0) (Tb_model.Tree.predict tree [| 0.0 |])

(* Boosting *)

let test_train_learns_xor () =
  let feats, labels = xor_dataset () in
  (* Replicate rows so histograms have mass. An odd count keeps the pattern
     frequencies slightly unbalanced: perfectly balanced XOR has exactly
     zero first-split gain and greedy boosting (like XGBoost's) cannot take
     the first step. *)
  let n = 211 in
  let feats = Array.init n (fun i -> feats.(i mod 4)) in
  let labels = Array.init n (fun i -> labels.(i mod 4)) in
  let ds = Dataset.make ~name:"xor" ~task:Forest.Binary_logistic feats labels in
  let params =
    { Train.default_params with num_rounds = 30; max_depth = 3; learning_rate = 0.3 }
  in
  let f = Train.fit ~params ds in
  check_bool "xor learned" true (Train.accuracy f ds > 0.95)

let test_train_regression_reduces_rmse () =
  let rng = Prng.create 6 in
  let ds = Generators.abalone ~rows:500 rng in
  let base_rmse = Tb_util.Stats.stddev ds.Dataset.labels in
  let params = { Train.default_params with num_rounds = 40; max_depth = 5 } in
  let f = Train.fit ~params ds in
  check_bool "rmse improved 2x" true (Train.rmse f ds < base_rmse /. 2.0)

let test_train_multiclass_learns () =
  let rng = Prng.create 7 in
  let ds = Generators.letter ~rows:600 rng in
  let params = { Train.default_params with num_rounds = 8; max_depth = 5 } in
  let f = Train.fit ~params ds in
  check_bool "letter accuracy > 0.5" true (Train.accuracy f ds > 0.5);
  (match f.Forest.task with
  | Forest.Multiclass 26 -> ()
  | _ -> Alcotest.fail "task preserved");
  check_int "trees multiple of classes" 0 (Array.length f.Forest.trees mod 26)

let test_train_respects_max_depth () =
  let rng = Prng.create 8 in
  let ds = Generators.higgs ~rows:300 rng in
  let params = { Train.default_params with num_rounds = 5; max_depth = 4 } in
  let f = Train.fit ~params ds in
  check_bool "depth bounded" true (Forest.max_depth f <= 4)

let test_train_deterministic () =
  let ds = Generators.higgs ~rows:200 (Prng.create 9) in
  let params = { Train.default_params with num_rounds = 5; max_depth = 4 } in
  let a = Train.fit ~params ds and b = Train.fit ~params ds in
  Array.iter2
    (fun ta tb -> check_bool "same trees" true (Tb_model.Tree.equal ta tb))
    a.Forest.trees b.Forest.trees

(* Zoo *)

let test_zoo_specs_match_table1 () =
  check_int "eight specs" 8 (List.length Zoo.specs);
  List.iter
    (fun (s : Zoo.spec) ->
      check_bool (s.Zoo.name ^ " known generator") true
        (List.mem s.Zoo.name Generators.names))
    Zoo.specs;
  let s = Zoo.spec "abalone" in
  check_int "abalone trees" 1000 s.Zoo.paper_trees;
  check_int "abalone depth" 7 s.Zoo.max_depth;
  check_int "abalone biased" 438 s.Zoo.paper_leaf_biased

let test_zoo_dataset_shape () =
  let s = Zoo.spec "letter" in
  let ds = Zoo.dataset s in
  check_int "letter features" 16 ds.Dataset.num_features;
  check_int "letter rows" s.Zoo.dataset_rows (Dataset.num_rows ds)

let test_zoo_cache_roundtrip () =
  (* Train a tiny stand-in spec through the cache machinery by pointing the
     cache at a temp dir and using the smallest benchmark config. *)
  let dir = Filename.temp_file "tb_zoo" "" in
  Sys.remove dir;
  let entry = Zoo.get ~cache_dir:dir "higgs" in
  check_bool "model cached" true (Sys.file_exists (Filename.concat dir "higgs.json"));
  let entry2 = Zoo.get ~cache_dir:dir "higgs" in
  check_int "same tree count"
    (Array.length entry.Zoo.forest.Forest.trees)
    (Array.length entry2.Zoo.forest.Forest.trees);
  let rows = entry.Zoo.test_data.Dataset.features in
  check_bool "cached model predicts identically" true
    (arrays_close
       (Array.map (fun r -> Forest.predict_single entry.Zoo.forest r) rows)
       (Array.map (fun r -> Forest.predict_single entry2.Zoo.forest r) rows));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let suite =
  [
    quick "binning simple column" test_binning_simple_column;
    quick "binning constant column" test_binning_constant_column;
    quick "binning equal values share bin" test_binning_equal_values_share_bin;
    quick "binning thresholds separate bins" test_binning_threshold_separates;
    quick "binning bin_of_value" test_binning_bin_of_value;
    quick "binning respects max bins" test_binning_respects_max_bins;
    quick "squared loss" test_squared_loss;
    quick "logistic gradients" test_logistic_loss_gradients;
    quick "logistic base score sign" test_logistic_base_score_sign;
    quick "one-vs-rest targets" test_one_vs_rest_targets;
    quick "tree builder fits a step" test_tree_builder_fits_step;
    quick "tree builder respects depth" test_tree_builder_respects_depth;
    quick "pure node stays leaf" test_tree_builder_pure_node_is_leaf;
    quick "leaf value is a Newton step" test_tree_builder_leaf_value_newton;
    quick "boosting learns xor" test_train_learns_xor;
    quick "regression reduces rmse" test_train_regression_reduces_rmse;
    quick "multiclass learns letter" test_train_multiclass_learns;
    quick "training respects max depth" test_train_respects_max_depth;
    quick "training deterministic" test_train_deterministic;
    quick "zoo specs match Table I" test_zoo_specs_match_table1;
    quick "zoo dataset shape" test_zoo_dataset_shape;
    quick "zoo cache roundtrip" test_zoo_cache_roundtrip;
  ]
