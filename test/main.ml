let () =
  Alcotest.run "treebeard"
    [
      ("util", Test_util.suite);
      ("model", Test_model.suite);
      ("data", Test_data.suite);
      ("gbt", Test_gbt.suite);
      ("hir", Test_hir.suite);
      ("mir", Test_mir.suite);
      ("lir", Test_lir.suite);
      ("vm", Test_vm.suite);
      ("baselines", Test_baselines.suite);
      ("core", Test_core.suite);
      ("robustness", Test_robustness.suite);
      ("more", Test_more.suite);
      ("dp-tiling", Test_dp_tiling.suite);
      ("reg-ir", Test_reg_ir.suite);
      ("analysis", Test_analysis.suite);
      ("quickscorer", Test_quickscorer.suite);
      ("interop", Test_interop.suite);
      ("golden", Test_golden.suite);
      ("differential", Test_differential.suite);
      ("cost-check", Test_cost_check.suite);
      ("serve", Test_serve.suite);
      ("shard", Test_shard.suite);
      ("artifact", Test_artifact.suite);
      ("soundness", Test_soundness.suite);
      ("numeric", Test_numeric.suite);
      ("quant", Test_quant.suite);
    ]
