open Helpers
module Prng = Tb_util.Prng
module Tree = Tb_model.Tree
module Forest = Tb_model.Forest
module Model_stats = Tb_model.Model_stats
module Shape = Tb_hir.Shape
module Lut = Tb_hir.Lut
module Itree = Tb_hir.Itree
module Tiling = Tb_hir.Tiling
module Tiled_tree = Tb_hir.Tiled_tree
module Padding = Tb_hir.Padding
module Reorder = Tb_hir.Reorder
module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program

(* ------------------------------------------------------------------ *)
(* Shapes and LUT                                                      *)
(* ------------------------------------------------------------------ *)

let catalan = [| 1; 1; 2; 5; 14; 42; 132; 429; 1430 |]

let test_shape_enumeration_counts () =
  for n = 1 to 6 do
    let shapes = Shape.enumerate ~max_size:n in
    let expected = Array.fold_left ( + ) 0 (Array.sub catalan 1 n) in
    check_int (Printf.sprintf "count up to %d" n) expected (List.length shapes)
  done

let test_shape_sizes () =
  List.iter
    (fun s ->
      check_bool "size in range" true (Shape.size s >= 1 && Shape.size s <= 4);
      check_int "exits" (Shape.size s + 1) (Shape.num_exits s))
    (Shape.enumerate ~max_size:4)

(* Independent reference navigation: recursively walk the shape, consuming
   bits by level-order node index computed from scratch. *)
let reference_navigate shape ~tile_size ~bits =
  (* Assign level-order ids. *)
  let ids = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.add (shape, []) q;
  let n = ref 0 in
  while not (Queue.is_empty q) do
    let Shape.Node (l, r), path = Queue.pop q in
    Hashtbl.add ids path !n;
    incr n;
    (match l with Some s -> Queue.add (s, 0 :: path) q | None -> ());
    (match r with Some s -> Queue.add (s, 1 :: path) q | None -> ())
  done;
  (* Count exits left of the exit reached. *)
  let exit_counter = ref 0 in
  let result = ref (-1) in
  let rec dfs (Shape.Node (l, r)) path on_path =
    let id = Hashtbl.find ids path in
    let bit = (bits lsr (tile_size - 1 - id)) land 1 in
    let go_left = bit = 1 in
    (match l with
    | Some s -> dfs s (0 :: path) (on_path && go_left)
    | None ->
      if on_path && go_left && !result < 0 then result := !exit_counter;
      incr exit_counter);
    match r with
    | Some s -> dfs s (1 :: path) (on_path && not go_left)
    | None ->
      if on_path && (not go_left) && !result < 0 then result := !exit_counter;
      incr exit_counter
  in
  dfs shape [] true;
  !result

let test_navigate_exhaustive_small () =
  (* Every shape of size <= 4, every bitmask, tile sizes 4: LUT navigation
     equals the independent reference. *)
  let tile_size = 4 in
  List.iter
    (fun shape ->
      for bits = 0 to (1 lsl tile_size) - 1 do
        check_int
          (Printf.sprintf "shape %s bits %d" (Shape.to_string shape) bits)
          (reference_navigate shape ~tile_size ~bits)
          (Shape.navigate shape ~tile_size ~bits)
      done)
    (Shape.enumerate ~max_size:tile_size)

let test_navigate_exhaustive_chains_size8 () =
  (* Size-8 exhaustive enumeration is 1430 shapes x 256 masks — sample the
     extremes: left chain, right chain, and balanced-ish shapes. *)
  let rec left_chain n =
    if n = 1 then Shape.Node (None, None)
    else Shape.Node (Some (left_chain (n - 1)), None)
  in
  let rec right_chain n =
    if n = 1 then Shape.Node (None, None)
    else Shape.Node (None, Some (right_chain (n - 1)))
  in
  let tile_size = 8 in
  List.iter
    (fun shape ->
      for bits = 0 to 255 do
        check_int "chain navigate"
          (reference_navigate shape ~tile_size ~bits)
          (Shape.navigate shape ~tile_size ~bits)
      done)
    [ left_chain 8; right_chain 8 ]

let test_navigate_paper_example () =
  (* Figure 5's first tile shape is the left chain (nodes 0-1-2 down the
     left spine, children a,b,c,d left to right). The paper's examples:
     outcome 111 -> a; 110 -> b (= LUT value 2 with the paper's 1-based
     child numbering); 011 -> d (the 4th child). Our children are
     0-based. *)
  let left_chain =
    Shape.Node (Some (Shape.Node (Some (Shape.Node (None, None)), None)), None)
  in
  check_int "111 -> a" 0 (Shape.navigate left_chain ~tile_size:3 ~bits:0b111);
  check_int "110 -> b (paper's 2nd child)" 1
    (Shape.navigate left_chain ~tile_size:3 ~bits:0b110);
  check_int "011 -> d (paper's 4th child)" 3
    (Shape.navigate left_chain ~tile_size:3 ~bits:0b011);
  (* And the balanced shape: 011 must give the 3rd child (paper: "it is the
     3rd child for the other tile shape (node c)"). *)
  let balanced =
    Shape.Node (Some (Shape.Node (None, None)), Some (Shape.Node (None, None)))
  in
  check_int "balanced 111 -> child 0" 0
    (Shape.navigate balanced ~tile_size:3 ~bits:0b111);
  check_int "balanced 011 -> c (paper's 3rd child)" 2
    (Shape.navigate balanced ~tile_size:3 ~bits:0b011);
  check_int "balanced 000 -> child 3" 3
    (Shape.navigate balanced ~tile_size:3 ~bits:0b000)

let test_navigate_ignores_dummy_bits () =
  (* A size-2 shape inside tile_size 4: bits of absent nodes must not
     change the result. *)
  let shape = Shape.Node (Some (Shape.Node (None, None)), None) in
  let tile_size = 4 in
  let results = Hashtbl.create 4 in
  for bits = 0 to 15 do
    let relevant = bits lsr 2 in
    (* nodes 0,1 occupy the top two bits *)
    let r = Shape.navigate shape ~tile_size ~bits in
    match Hashtbl.find_opt results relevant with
    | None -> Hashtbl.add results relevant r
    | Some r' -> check_int "dummy bits ignored" r' r
  done

let test_lut_matches_navigate () =
  let lut = Lut.create ~tile_size:3 in
  List.iter
    (fun shape ->
      let id = Lut.shape_id lut shape in
      for bits = 0 to 7 do
        check_int "lut = navigate"
          (Shape.navigate shape ~tile_size:3 ~bits)
          (Lut.lookup lut ~shape_id:id ~bits)
      done)
    (Shape.enumerate ~max_size:3)

let test_lut_interning () =
  let lut = Lut.create ~tile_size:2 in
  let s = Shape.Node (Some (Shape.Node (None, None)), None) in
  let id1 = Lut.shape_id lut s in
  let id2 = Lut.shape_id lut s in
  check_int "same id" id1 id2;
  check_int "num shapes" 1 (Lut.num_shapes lut);
  check_bool "shape_of_id" true (Shape.equal (Lut.shape_of_id lut id1) s)

let test_lut_rejects_oversized () =
  let lut = Lut.create ~tile_size:1 in
  let s = Shape.Node (Some (Shape.Node (None, None)), None) in
  check_bool "raises" true
    (match Lut.shape_id lut s with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Itree                                                               *)
(* ------------------------------------------------------------------ *)

let test_itree_roundtrip () =
  let rng = Prng.create 11 in
  for _ = 1 to 50 do
    let tree = Tree.random ~max_depth:7 rng in
    check_bool "roundtrip" true (Tree.equal tree (Itree.to_tree (Itree.of_tree tree)))
  done

let test_itree_node_probs_root_is_one () =
  let rng = Prng.create 12 in
  for _ = 1 to 20 do
    let tree = Tree.random ~max_depth:6 rng in
    let it = Itree.of_tree tree in
    let nl = Tree.num_leaves tree in
    let leaf_probs = Array.make nl (1.0 /. float_of_int nl) in
    let probs = Itree.node_probs it ~leaf_probs in
    check_bool "root prob 1" true (floats_close probs.(Itree.root) 1.0)
  done

let test_itree_depth_of () =
  let tree =
    Tree.Node
      {
        feature = 0;
        threshold = 0.0;
        left = Tree.Leaf 1.0;
        right =
          Tree.Node
            { feature = 1; threshold = 0.0; left = Tree.Leaf 2.0; right = Tree.Leaf 3.0 };
      }
  in
  let it = Itree.of_tree tree in
  check_int "root depth" 0 (Itree.depth_of it Itree.root);
  (* preorder: 0=root, 1=left leaf, 2=right node, 3/4 its leaves *)
  check_int "leaf depth" 1 (Itree.depth_of it 1);
  check_int "deep leaf depth" 2 (Itree.depth_of it 4)

(* ------------------------------------------------------------------ *)
(* Tiling                                                              *)
(* ------------------------------------------------------------------ *)

let random_leaf_probs rng n =
  let raw = Array.init n (fun _ -> Prng.uniform rng ** 3.0) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun x -> x /. total) raw

let tiling_valid_property ~probabilistic seed =
  let rng = Prng.create seed in
  let tree = Tree.random ~max_depth:8 rng in
  let it = Itree.of_tree tree in
  let tile_size = 1 + Prng.int rng 8 in
  let tiling =
    if probabilistic then begin
      let leaf_probs = random_leaf_probs rng (Tree.num_leaves tree) in
      let node_probs = Itree.node_probs it ~leaf_probs in
      Tiling.probability_based it ~node_probs ~tile_size
    end
    else Tiling.basic it ~tile_size
  in
  match Tiling.check_valid it tiling with
  | Ok () -> true
  | Error msg -> QCheck2.Test.fail_reportf "invalid tiling: %s" msg

let test_basic_tiling_tile_size_one () =
  (* Tile size 1 must produce one tile per internal node. *)
  let rng = Prng.create 21 in
  for _ = 1 to 20 do
    let tree = Tree.random ~max_depth:6 rng in
    let it = Itree.of_tree tree in
    let tiling = Tiling.basic it ~tile_size:1 in
    check_int "one tile per internal node" (Tree.num_nodes tree)
      tiling.Tiling.num_tiles
  done

let test_basic_tiling_complete_tree () =
  (* A complete depth-3 tree (7 internal nodes) tiled with n_t = 3 should
     put the top 3 nodes in tile 0 (FAST-style triangular tiling). *)
  let rec complete d =
    if d = 0 then Tree.Leaf 0.5
    else
      Tree.Node
        { feature = d; threshold = 0.0; left = complete (d - 1); right = complete (d - 1) }
  in
  let it = Itree.of_tree (complete 3) in
  let tiling = Tiling.basic it ~tile_size:3 in
  (match Tiling.check_valid it tiling with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* nodes: preorder; root=0, its children are 1 and 8 (left subtree has 7
     nodes: 3 internal + 4 leaves). *)
  check_int "root tile" 0 tiling.Tiling.tile_of_node.(0);
  check_int "left child same tile" 0 tiling.Tiling.tile_of_node.(1);
  check_int "right child same tile" 0 tiling.Tiling.tile_of_node.(8);
  check_int "5 tiles total" 5 tiling.Tiling.num_tiles

let test_probability_tiling_prefers_probable () =
  (* A right-chain where the deepest leaf is overwhelmingly likely: with
     tile size 2 the first tile must contain the two topmost chain nodes
     (they lie on the hot path), keeping the hot leaf shallow. *)
  let tree =
    Tree.Node
      {
        feature = 0;
        threshold = 0.0;
        left = Tree.Leaf 1.0;
        right =
          Tree.Node
            {
              feature = 1;
              threshold = 0.0;
              left = Tree.Leaf 2.0;
              right =
                Tree.Node
                  {
                    feature = 2;
                    threshold = 0.0;
                    left = Tree.Leaf 3.0;
                    right = Tree.Leaf 4.0;
                  };
            };
      }
  in
  let it = Itree.of_tree tree in
  (* leaves left-to-right: 1.0, 2.0, 3.0, 4.0; make leaf 4.0 hot. *)
  let node_probs = Itree.node_probs it ~leaf_probs:[| 0.05; 0.05; 0.05; 0.85 |] in
  let tiling = Tiling.probability_based it ~node_probs ~tile_size:2 in
  (match Tiling.check_valid it tiling with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* preorder ids: 0 root, 1 leaf, 2 node, 3 leaf, 4 node, 5/6 leaves *)
  check_int "root and hot child share tile" tiling.Tiling.tile_of_node.(0)
    tiling.Tiling.tile_of_node.(2)

let test_tile_root_and_nodes () =
  let rng = Prng.create 23 in
  let tree = Tree.random ~max_depth:7 rng in
  let it = Itree.of_tree tree in
  let tiling = Tiling.basic it ~tile_size:4 in
  for tid = 0 to tiling.Tiling.num_tiles - 1 do
    let nodes = Tiling.nodes_of_tile tiling tid in
    let root = Tiling.tile_root it tiling tid in
    check_bool "root in tile" true (List.mem root nodes);
    check_bool "nonempty" true (nodes <> [])
  done

(* ------------------------------------------------------------------ *)
(* Tiled trees                                                         *)
(* ------------------------------------------------------------------ *)

let tiled_walk_equivalence_property ~probabilistic ~pad seed =
  let rng = Prng.create seed in
  let num_features = 6 in
  let tree = Tree.random ~max_depth:8 ~num_features rng in
  let it = Itree.of_tree tree in
  let tile_size = 1 + Prng.int rng 8 in
  let lut = Lut.create ~tile_size in
  let tiling =
    if probabilistic then begin
      let leaf_probs = random_leaf_probs rng (Tree.num_leaves tree) in
      let node_probs = Itree.node_probs it ~leaf_probs in
      Tiling.probability_based it ~node_probs ~tile_size
    end
    else Tiling.basic it ~tile_size
  in
  let tiled = Tiled_tree.create lut it tiling in
  let tiled = if pad then Padding.pad_to_uniform_depth tiled else tiled in
  let rows = random_rows rng num_features 64 in
  Array.for_all
    (fun row -> floats_close (Tree.predict tree row) (Tiled_tree.walk tiled row))
    rows
  || QCheck2.Test.fail_reportf "tiled walk diverges (nt=%d pad=%b)" tile_size pad

let test_tiled_tree_scalar_depth () =
  (* Tile size 1: tiled depth equals binary depth (in tiles = nodes+1 on
     the path... the deepest leaf is depth-of-tree tiles down). *)
  let rng = Prng.create 31 in
  for _ = 1 to 20 do
    let tree = Tree.random ~max_depth:7 rng in
    let it = Itree.of_tree tree in
    let lut = Lut.create ~tile_size:1 in
    let tiled = Tiled_tree.create lut it (Tiling.basic it ~tile_size:1) in
    check_int "depth matches" (Tree.depth tree) (Tiled_tree.depth tiled)
  done

let test_tiled_tree_leaf_count () =
  let rng = Prng.create 32 in
  for _ = 1 to 20 do
    let tree = Tree.random ~max_depth:7 rng in
    let it = Itree.of_tree tree in
    let lut = Lut.create ~tile_size:4 in
    let tiled = Tiled_tree.create lut it (Tiling.basic it ~tile_size:4) in
    check_int "leaves preserved" (Tree.num_leaves tree) (Tiled_tree.num_leaves tiled)
  done

let test_tiled_tree_single_leaf () =
  let it = Itree.of_tree (Tree.Leaf 7.5) in
  let lut = Lut.create ~tile_size:4 in
  let tiled = Tiled_tree.create lut it (Tiling.basic it ~tile_size:4) in
  check_float "constant walk" 7.5 (Tiled_tree.walk tiled [| 0.0 |]);
  check_int "depth 0" 0 (Tiled_tree.depth tiled)

let test_padding_uniform () =
  let rng = Prng.create 33 in
  for _ = 1 to 30 do
    let tree = Tree.random ~max_depth:8 rng in
    let it = Itree.of_tree tree in
    let tile_size = 1 + Prng.int rng 4 in
    let lut = Lut.create ~tile_size in
    let tiled = Tiled_tree.create lut it (Tiling.basic it ~tile_size) in
    let padded = Padding.pad_to_uniform_depth tiled in
    check_bool "uniform after pad" true (Tiled_tree.is_uniform_depth padded);
    check_int "depth preserved" (Tiled_tree.depth tiled) (Tiled_tree.depth padded);
    check_int "imbalance zero" 0 (Padding.imbalance padded)
  done

let test_padding_idempotent_on_uniform () =
  let rng = Prng.create 34 in
  let tree = Tree.random ~max_depth:6 rng in
  let it = Itree.of_tree tree in
  let lut = Lut.create ~tile_size:2 in
  let tiled = Tiled_tree.create lut it (Tiling.basic it ~tile_size:2) in
  let p1 = Padding.pad_to_uniform_depth tiled in
  let p2 = Padding.pad_to_uniform_depth p1 in
  check_bool "physically unchanged" true (p1 == p2)

let test_padding_to_larger_depth () =
  let it = Itree.of_tree (Tree.Node
    { feature = 0; threshold = 0.0; left = Tree.Leaf 1.0; right = Tree.Leaf 2.0 }) in
  let lut = Lut.create ~tile_size:2 in
  let tiled = Tiled_tree.create lut it (Tiling.basic it ~tile_size:2) in
  let padded = Padding.pad_to_depth tiled ~depth:4 in
  check_int "depth 4" 4 (Tiled_tree.depth padded);
  check_bool "uniform" true (Tiled_tree.is_uniform_depth padded);
  check_float "walk left" 1.0 (Tiled_tree.walk padded [| -1.0 |]);
  check_float "walk right" 2.0 (Tiled_tree.walk padded [| 1.0 |])

let test_expected_depth_prob_beats_basic_on_biased () =
  (* Aggregate property over strongly leaf-biased random trees. *)
  let rng = Prng.create 35 in
  let basic_total = ref 0.0 and prob_total = ref 0.0 in
  for _ = 1 to 40 do
    let tree = Tree.random ~max_depth:8 rng in
    let nl = Tree.num_leaves tree in
    if nl >= 4 then begin
      let it = Itree.of_tree tree in
      (* Concentrate 94% of the mass on one random leaf. *)
      let hot = Prng.int rng nl in
      let leaf_probs =
        Array.init nl (fun i ->
            if i = hot then 0.94 else 0.06 /. float_of_int (nl - 1))
      in
      let node_probs = Itree.node_probs it ~leaf_probs in
      let tile_size = 4 in
      let lut = Lut.create ~tile_size in
      let expected tiling =
        let tiled = Tiled_tree.create lut it tiling in
        (* leaf probability by reached node: replay per-leaf mass. *)
        let leaf_nodes = Hashtbl.create 16 in
        let rank = Itree.leaf_rank it in
        (* Walk every source leaf's representative row? Simpler: use
           Tiled_tree.expected_depth with probabilities derived from
           structure: map tiled leaves to source leaf order. *)
        ignore rank;
        ignore leaf_nodes;
        let depths = List.rev (Tiled_tree.leaf_depths tiled) in
        (* leaf_depths lists leaves in DFS order = left-to-right source
           order (padding dead leaves excluded). *)
        List.fold_left2
          (fun acc (d, _) p -> acc +. (float_of_int d *. p))
          0.0 depths (Array.to_list leaf_probs)
      in
      basic_total := !basic_total +. expected (Tiling.basic it ~tile_size);
      prob_total :=
        !prob_total +. expected (Tiling.probability_based it ~node_probs ~tile_size)
    end
  done;
  check_bool
    (Printf.sprintf "prob (%.2f) <= basic (%.2f) x 1.02" !prob_total !basic_total)
    true
    (!prob_total <= !basic_total *. 1.02)

(* ------------------------------------------------------------------ *)
(* Reordering and Program                                              *)
(* ------------------------------------------------------------------ *)

let test_reorder_covers_all () =
  let rng = Prng.create 41 in
  let trees =
    Array.init 20 (fun _ ->
        let tree = Tree.random ~max_depth:6 rng in
        let it = Itree.of_tree tree in
        let lut = Lut.create ~tile_size:2 in
        Tiled_tree.create lut it (Tiling.basic it ~tile_size:2))
  in
  let groups = Reorder.reorder trees in
  let seen = Array.make 20 false in
  List.iter
    (fun g ->
      Array.iter
        (fun i ->
          check_bool "no duplicate" false seen.(i);
          seen.(i) <- true)
        g.Reorder.positions)
    groups;
  check_bool "all covered" true (Array.for_all Fun.id seen)

let test_reorder_groups_isomorphic () =
  (* Identical trees must land in one shared-structure group. *)
  let tree =
    Tree.Node { feature = 0; threshold = 0.5; left = Tree.Leaf 1.0; right = Tree.Leaf 2.0 }
  in
  let lut = Lut.create ~tile_size:2 in
  let mk () =
    let it = Itree.of_tree tree in
    Tiled_tree.create lut it (Tiling.basic it ~tile_size:2)
  in
  let groups = Reorder.reorder (Array.init 5 (fun _ -> mk ())) in
  check_int "one group" 1 (List.length groups);
  check_bool "shared structure" true (List.hd groups).Reorder.shared_structure;
  check_int "one code variant" 1 (Reorder.num_code_variants groups)

let random_forest rng =
  Forest.random ~num_trees:(3 + Prng.int rng 10) ~max_depth:6 ~num_features:6 rng

let program_equivalence_property seed =
  let rng = Prng.create seed in
  let forest = random_forest rng in
  let schedule =
    {
      Schedule.scalar_baseline with
      tile_size = 1 + Prng.int rng 8;
      tiling = (if Prng.bool rng then Schedule.Basic else Schedule.Probability_based);
      pad_and_unroll = Prng.bool rng;
      pad_imbalance_limit = Prng.int rng 8;
    }
  in
  let rows = random_rows rng forest.Forest.num_features 16 in
  let profiles = Model_stats.profile_forest forest rows in
  let program = Program.build ~profiles forest schedule in
  Array.for_all
    (fun row ->
      arrays_close (Forest.predict_raw forest row) (Program.reference_predict program row))
    rows
  || QCheck2.Test.fail_reportf "program diverges: %s" (Schedule.to_string schedule)

let test_program_multiclass_classes () =
  let rng = Prng.create 43 in
  let k = 3 in
  let trees = Array.init 6 (fun _ -> Tree.random ~max_depth:4 ~num_features:4 rng) in
  let forest = Forest.make ~task:(Forest.Multiclass k) ~num_features:4 trees in
  let program = Program.build forest Schedule.default in
  let rows = random_rows rng 4 20 in
  Array.iter
    (fun row ->
      let a = Forest.predict_raw forest row in
      let b = Program.reference_predict program row in
      check_bool "multiclass equal" true (arrays_close a b))
    rows

let test_schedule_validate () =
  check_bool "default ok" true (Schedule.validate Schedule.default = Ok ());
  check_bool "bad tile size" true
    (Result.is_error (Schedule.validate { Schedule.default with tile_size = 9 }));
  check_bool "bad interleave" true
    (Result.is_error (Schedule.validate { Schedule.default with interleave = 0 }))

let test_table2_grid_sane () =
  let grid = Schedule.table2_grid in
  check_bool "non-trivial grid" true (List.length grid > 100);
  List.iter
    (fun s ->
      match Schedule.validate s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid grid schedule %s: %s" (Schedule.to_string s) m)
    grid

let test_leaf_biased_trees_get_probability_tiling () =
  let rng = Prng.create 44 in
  let forest = random_forest rng in
  (* Rows drawn from a single point mass: every tree becomes leaf-biased. *)
  let row = random_row rng forest.Forest.num_features in
  let rows = Array.make 50 row in
  let profiles = Model_stats.profile_forest forest rows in
  let program =
    Program.build ~profiles forest
      { Schedule.default with tiling = Schedule.Probability_based }
  in
  check_int "all trees probability-tiled"
    (Array.length forest.Forest.trees)
    (Program.num_leaf_biased program)

let suite =
  [
    quick "shape enumeration counts (Catalan)" test_shape_enumeration_counts;
    quick "shape sizes and exits" test_shape_sizes;
    quick "navigate exhaustive (size<=4)" test_navigate_exhaustive_small;
    quick "navigate chains at size 8" test_navigate_exhaustive_chains_size8;
    quick "navigate matches paper Fig.5" test_navigate_paper_example;
    quick "navigate ignores dummy bits" test_navigate_ignores_dummy_bits;
    quick "lut matches navigate" test_lut_matches_navigate;
    quick "lut interning" test_lut_interning;
    quick "lut rejects oversized shapes" test_lut_rejects_oversized;
    quick "itree roundtrip" test_itree_roundtrip;
    quick "itree node probs root=1" test_itree_node_probs_root_is_one;
    quick "itree depth_of" test_itree_depth_of;
    qcheck ~name:"basic tiling is valid" seed_gen
      (tiling_valid_property ~probabilistic:false);
    qcheck ~name:"probability tiling is valid" seed_gen
      (tiling_valid_property ~probabilistic:true);
    quick "tile size 1 = one tile per node" test_basic_tiling_tile_size_one;
    quick "basic tiling on complete tree" test_basic_tiling_complete_tree;
    quick "probability tiling follows hot path" test_probability_tiling_prefers_probable;
    quick "tile roots well-defined" test_tile_root_and_nodes;
    qcheck ~name:"tiled walk == binary walk (basic)" seed_gen
      (tiled_walk_equivalence_property ~probabilistic:false ~pad:false);
    qcheck ~name:"tiled walk == binary walk (probability)" seed_gen
      (tiled_walk_equivalence_property ~probabilistic:true ~pad:false);
    qcheck ~name:"tiled walk == binary walk (padded)" seed_gen
      (tiled_walk_equivalence_property ~probabilistic:false ~pad:true);
    quick "tile size 1 depth" test_tiled_tree_scalar_depth;
    quick "tiled leaf count" test_tiled_tree_leaf_count;
    quick "single leaf tree" test_tiled_tree_single_leaf;
    quick "padding yields uniform depth" test_padding_uniform;
    quick "padding idempotent" test_padding_idempotent_on_uniform;
    quick "padding to larger depth" test_padding_to_larger_depth;
    quick "probability tiling lowers expected depth" test_expected_depth_prob_beats_basic_on_biased;
    quick "reorder covers all trees" test_reorder_covers_all;
    quick "reorder groups isomorphic trees" test_reorder_groups_isomorphic;
    qcheck ~name:"program reference == forest" seed_gen program_equivalence_property;
    quick "program multiclass aggregation" test_program_multiclass_classes;
    quick "schedule validation" test_schedule_validate;
    quick "table2 grid sane" test_table2_grid_sane;
    quick "leaf-biased trees use Algorithm 1" test_leaf_biased_trees_get_probability_tiling;
  ]
