open Helpers
module Prng = Tb_util.Prng
module Forest = Tb_model.Forest
module Schedule = Tb_hir.Schedule
module Program = Tb_hir.Program
module Reorder = Tb_hir.Reorder
module Tiled_tree = Tb_hir.Tiled_tree
module Mir = Tb_mir.Mir

let build_program ?(schedule = Schedule.default) seed =
  let rng = Prng.create seed in
  let forest = Forest.random ~num_trees:12 ~max_depth:7 ~num_features:6 rng in
  Program.build forest schedule

let test_lower_of_hir_is_neutral () =
  let p = build_program 1 in
  let mir = Mir.lower_of_hir p in
  check_int "single thread" 1 mir.Mir.num_threads;
  Array.iter
    (fun plan ->
      check_bool "generic walk" true (plan.Mir.walk = Mir.Loop_walk);
      check_int "no jam" 1 plan.Mir.interleave)
    mir.Mir.group_plans

let test_unrolling_only_uniform_groups () =
  let p = build_program ~schedule:{ Schedule.default with interleave = 1 } 2 in
  let mir = Mir.lower p in
  Array.iter
    (fun plan ->
      match plan.Mir.walk with
      | Mir.Unrolled_walk { depth } ->
        check_bool "group uniform" true plan.Mir.group.Reorder.uniform;
        check_int "depth matches group" plan.Mir.group.Reorder.walk_depth depth
      | Mir.Loop_walk | Mir.Peeled_walk _ ->
        check_bool "non-uniform group" false plan.Mir.group.Reorder.uniform)
    mir.Mir.group_plans

let test_peeling_depth_is_min_leaf_depth () =
  let schedule =
    { Schedule.default with pad_and_unroll = false; peel = true; tile_size = 2 }
  in
  let p = build_program ~schedule 3 in
  let mir = Mir.lower p in
  Array.iter
    (fun plan ->
      match plan.Mir.walk with
      | Mir.Peeled_walk { peel } ->
        let min_depth =
          Array.fold_left
            (fun acc pos ->
              min acc (Tiled_tree.min_leaf_depth p.Program.trees.(pos).Program.tiled))
            max_int plan.Mir.group.Reorder.positions
        in
        check_int "peel = min leaf depth" min_depth peel;
        check_bool "peel positive" true (peel >= 1)
      | Mir.Loop_walk -> ()
      | Mir.Unrolled_walk _ -> Alcotest.fail "unroll disabled")
    mir.Mir.group_plans

let test_interleave_row_major_capped_by_group () =
  let schedule =
    {
      Schedule.default with
      loop_order = Schedule.One_row_at_a_time;
      interleave = 8;
      pad_and_unroll = false;
      peel = false;
    }
  in
  let p = build_program ~schedule 4 in
  let mir = Mir.lower p in
  Array.iter
    (fun plan ->
      check_bool "jam <= group size" true
        (plan.Mir.interleave <= max 1 (Array.length plan.Mir.group.Reorder.positions));
      check_bool "jam <= factor" true (plan.Mir.interleave <= 8))
    mir.Mir.group_plans

let test_interleave_tree_major_uses_factor () =
  let schedule = { Schedule.default with interleave = 4 } in
  let p = build_program ~schedule 5 in
  let mir = Mir.lower p in
  Array.iter
    (fun plan -> check_int "row jam = factor" 4 plan.Mir.interleave)
    mir.Mir.group_plans

let test_parallelization_tiles_rows () =
  let schedule = Schedule.with_threads Schedule.default 8 in
  let p = build_program ~schedule 6 in
  let mir = Mir.lower p in
  check_int "threads" 8 mir.Mir.num_threads

let test_pp_renders_loop_order () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let p_tree =
    build_program ~schedule:{ Schedule.default with loop_order = Schedule.One_tree_at_a_time } 7
  in
  let s = Mir.to_string (Mir.lower p_tree) in
  check_bool "tree-major mentions groups" true (contains s "group");
  let p_row =
    build_program
      ~schedule:{ Schedule.default with loop_order = Schedule.One_row_at_a_time } 7
  in
  let s_row = Mir.to_string (Mir.lower p_row) in
  check_bool "row-major has prediction accumulator" true (contains s_row "prediction")

let test_walk_steps_bound_sane () =
  let p = build_program 8 in
  let mir = Mir.lower p in
  let bound = Mir.total_walk_steps_bound p mir in
  let trees = Array.length p.Program.trees in
  check_bool "at least one step per tree" true (bound >= trees);
  check_bool "bounded by depth sum" true (bound <= trees * 16)

let suite =
  [
    quick "lower_of_hir is neutral" test_lower_of_hir_is_neutral;
    quick "unrolling only for uniform groups" test_unrolling_only_uniform_groups;
    quick "peel = min leaf depth" test_peeling_depth_is_min_leaf_depth;
    quick "row-major jam capped by group" test_interleave_row_major_capped_by_group;
    quick "tree-major jam uses factor" test_interleave_tree_major_uses_factor;
    quick "parallelization sets threads" test_parallelization_tiles_rows;
    quick "pp renders loop order" test_pp_renders_loop_order;
    quick "walk steps bound" test_walk_steps_bound_sane;
  ]
